(* CISC-64 comparator tests: encode/decode round trips, the mini-C
   backend against the same programs the RISC-V backend runs (both
   backends must compute identical results), block discovery, and
   instrumentation correctness incl. the flag-preservation question the
   x86 column of the paper's table hinges on. *)

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

let exit_code = function
  | Cisc.Emu.Exited c -> c
  | s -> Alcotest.failf "expected exit, got %a" Cisc.Emu.pp_stop s

(* --- encode/decode ---------------------------------------------------------- *)

let gen_insn : Cisc.Isa.insn QCheck.Gen.t =
  let open QCheck.Gen in
  let open Cisc.Isa in
  let reg = int_range 0 15 in
  let freg = int_range 0 7 in
  let i32v = map Int32.of_int (int_range (-1000000) 1000000) in
  let i64v = map Int64.of_int (int_range (-1000000) 1000000) in
  let cc = oneofl [ Eq; Ne; Lt; Ge; Le; Gt ] in
  oneof
    [
      map2 (fun a b -> Mov (a, b)) reg reg;
      map2 (fun a v -> Movi (a, v)) reg i64v;
      map3 (fun a b d -> Load (a, b, d)) reg reg i32v;
      map3 (fun a b d -> Store (a, b, d)) reg reg i32v;
      map2 (fun a b -> Add (a, b)) reg reg;
      map2 (fun a b -> Sub (a, b)) reg reg;
      map2 (fun a b -> Cmp (a, b)) reg reg;
      map2 (fun a v -> Addi (a, v)) reg i32v;
      map2 (fun a v -> Cmpi (a, v)) reg i32v;
      map2 (fun a b -> Imul (a, b)) reg reg;
      map (fun v -> Jmp v) i32v;
      map2 (fun c v -> Jcc (c, v)) cc i32v;
      map (fun v -> Call v) i32v;
      return Ret;
      map (fun r -> Push r) reg;
      map (fun r -> Pop r) reg;
      map (fun v -> IncAbs v) (map Int64.of_int (int_range 0 0xFFFFFF));
      return Pushf;
      return Popf;
      return Trap;
      map2 (fun c r -> Setcc (c, r)) cc reg;
      map3 (fun f r d -> Fload (f, r, d)) freg reg i32v;
      map2 (fun a b -> Fadd (a, b)) freg freg;
      map2 (fun f v -> Fmovi (f, v)) freg i64v;
      map2 (fun f r -> Fcvt_if (f, r)) freg reg;
    ]

let prop_roundtrip =
  QCheck.Test.make ~name:"cisc encode/decode round trip" ~count:2000
    (QCheck.make gen_insn) (fun insn ->
      let buf = Buffer.create 16 in
      Cisc.Isa.encode buf insn;
      let bytes = Buffer.to_bytes buf in
      if Bytes.length bytes <> Cisc.Isa.length insn then
        QCheck.Test.fail_reportf "length mismatch: wrote %d, declared %d"
          (Bytes.length bytes) (Cisc.Isa.length insn)
      else
        let insn', len =
          Cisc.Isa.decode
            ~read8:(fun a -> Char.code (Bytes.get bytes (Int64.to_int a)))
            ~read32:(fun a -> Bytes.get_int32_le bytes (Int64.to_int a))
            ~read64:(fun a -> Bytes.get_int64_le bytes (Int64.to_int a))
            0L
        in
        insn' = insn && len = Bytes.length bytes)

(* --- backend equivalence ------------------------------------------------------ *)

(* the same mini-C program must produce the same observable behaviour on
   both backends *)
let check_both_backends ?(compare_output = true) name src =
  let rv_stop, rv_out = Minicc.Driver.run src in
  let ci_stop, ci_out = Cisc.Cdriver.run src in
  let rv_code =
    match rv_stop with
    | Rvsim.Machine.Exited c -> c
    | s -> Alcotest.failf "%s: riscv failed: %a" name Rvsim.Machine.pp_stop s
  in
  checki (name ^ ": exit codes agree") rv_code (exit_code ci_stop);
  (* programs that print elapsed *time* are machine-dependent by design *)
  if compare_output then checks (name ^ ": outputs agree") rv_out ci_out

let test_backend_equivalence () =
  check_both_backends "fib" Minicc.Programs.fib;
  check_both_backends "switch" Minicc.Programs.switch_demo;
  check_both_backends "mixed" Minicc.Programs.mixed;
  check_both_backends "calls" Minicc.Programs.calls;
  check_both_backends ~compare_output:false "matmul"
    (Minicc.Programs.matmul ~n:5 ~reps:2)

let test_backend_equivalence_edge_cases () =
  check_both_backends "negatives"
    {| int main() { print_int(0 - 7); print_int(-3 * -4); return (0 - 9) % 256; } |};
  check_both_backends "logic"
    {| int main() { int a; a = 3; return (a > 1 && a < 5) + 2 * (a == 3 || a == 9); } |};
  check_both_backends "nested calls"
    {|
int g(int x) { return x * 2; }
int f(int x) { return g(x) + g(x + 1); }
int main() { return f(f(2)); }
|}

(* --- block discovery ------------------------------------------------------------ *)

let test_block_discovery () =
  let c = Cisc.Cdriver.compile (Minicc.Programs.matmul ~n:4 ~reps:1) in
  let b = Cisc.Instrument.of_compiled c in
  let mult = List.assoc "multiply" c.Cisc.Cdriver.fn_addrs in
  let blocks = Cisc.Instrument.blocks_of_function b mult in
  checkb
    (Printf.sprintf "plausible block count (%d)" (List.length blocks))
    true
    (List.length blocks >= 8 && List.length blocks <= 16);
  (* blocks tile the function span: consecutive, no gaps *)
  let rec tiled = function
    | (_, e1) :: ((s2, _) :: _ as rest) -> Int64.equal e1 s2 && tiled rest
    | _ -> true
  in
  checkb "blocks tile the function" true (tiled blocks)

(* --- instrumentation -------------------------------------------------------------- *)

let counter = 0x3F0000L

let run_instrumented ?(preserve_flags = true) ~all src fname =
  let c = Cisc.Cdriver.compile src in
  let b = Cisc.Instrument.of_compiled c in
  let inst = Cisc.Instrument.create ~preserve_flags b in
  let entry = List.assoc fname c.Cisc.Cdriver.fn_addrs in
  if all then Cisc.Instrument.instrument_all_blocks inst ~entry ~counter
  else Cisc.Instrument.instrument_function_entry inst ~entry ~counter;
  let m = Cisc.Cdriver.load c in
  Cisc.Instrument.apply inst m;
  let stop = Cisc.Emu.run m in
  (stop, Cisc.Emu.stdout_contents m, Rvsim.Mem.read64 m.Cisc.Emu.mem counter)

let test_entry_instrumentation () =
  let src = Minicc.Programs.fib in
  let stop, out, count = run_instrumented ~all:false src "fib" in
  checki "exit preserved" 55 (exit_code stop);
  checks "output preserved" "610\n" out;
  (* fib called once per node of both call trees: fib(15) + fib(10) *)
  checkb "fib call count plausible" true (Int64.compare count 1000L > 0)

let test_bb_instrumentation_preserves_behaviour () =
  let src = Minicc.Programs.switch_demo in
  let stop, out, count = run_instrumented ~all:true src "classify" in
  checki "exit preserved" (613 mod 256) (exit_code stop);
  checks "output preserved" "613\n" out;
  checkb "blocks counted" true (Int64.compare count 0L > 0)

let test_flags_preserved_by_snippet () =
  (* instrumentation lands between a comparison and its branch: with
     PUSHF/POPF the branch still sees the right flags.  Arrange it by
     instrumenting every block: some block boundary falls right after a
     Cmp (the Jcc begins a new... actually Jcc ends blocks; flags cross
     block boundaries through the snippet only in the fallthrough case
     of compound conditions).  The real assertion: full-program
     behaviour of a branch-heavy program is preserved. *)
  let src =
    {|
int classify(int x) {
  if (x < 0) { return 0 - 1; }
  if (x == 0) { return 0; }
  if (x > 100) { return 2; }
  return 1;
}
int main() {
  int s;
  s = classify(-5) + classify(0) * 10 + classify(7) * 100 + classify(200) * 1000;
  print_int(s);
  return 0;
}
|}
  in
  let stop, out, _ = run_instrumented ~all:true src "classify" in
  checki "exit" 0 (exit_code stop);
  checks "branches unperturbed" "2099\n" out

let test_trap_fallback () =
  (* a tiny function (just Ret, 1 byte) forces the TRAP springboard *)
  let src = {|
int tiny() { return 0; }
int main() { tiny(); tiny(); tiny(); return 5; }
|} in
  (* "return 0" compiles to more than 5 bytes, so shrink: instrument the
     epilogue-ish last block instead; simpler: force by instrumenting a
     block smaller than 5 bytes if one exists, else skip *)
  let c = Cisc.Cdriver.compile src in
  let b = Cisc.Instrument.of_compiled c in
  let tiny = List.assoc "tiny" c.Cisc.Cdriver.fn_addrs in
  let blocks = Cisc.Instrument.blocks_of_function b tiny in
  let small =
    List.find_opt (fun (lo, hi) -> Int64.to_int (Int64.sub hi lo) < 5) blocks
  in
  match small with
  | None -> () (* no tiny block in this build: covered by the bench mutatee *)
  | Some blk ->
      let inst = Cisc.Instrument.create b in
      Cisc.Instrument.instrument_block inst ~block:blk ~counter;
      let m = Cisc.Cdriver.load c in
      Cisc.Instrument.apply inst m;
      let stop = Cisc.Emu.run m in
      checki "exit preserved with trap springboard" 5 (exit_code stop);
      checkb "trap used" true (inst.Cisc.Instrument.n_traps > 0)

let () =
  Alcotest.run "cisc"
    [
      ("isa", [ QCheck_alcotest.to_alcotest ~long:false prop_roundtrip ]);
      ( "backend",
        [
          Alcotest.test_case "equivalence with RISC-V backend" `Quick
            test_backend_equivalence;
          Alcotest.test_case "edge cases" `Quick test_backend_equivalence_edge_cases;
        ] );
      ( "instrumentation",
        [
          Alcotest.test_case "block discovery" `Quick test_block_discovery;
          Alcotest.test_case "entry counter" `Quick test_entry_instrumentation;
          Alcotest.test_case "bb counters preserve behaviour" `Quick
            test_bb_instrumentation_preserves_behaviour;
          Alcotest.test_case "flags preserved" `Quick test_flags_preserved_by_snippet;
          Alcotest.test_case "trap fallback" `Quick test_trap_fallback;
        ] );
    ]
