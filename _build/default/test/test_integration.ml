(* Whole-system integration tests: the three Figure-1 instrumentation
   flows must agree; rewriting is deterministic; a rewritten binary is
   itself a valid analyzable/instrumentable binary; the component map
   (Figure 2) names every toolkit. *)

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let check64 = Alcotest.(check int64)
let checks = Alcotest.(check string)

let src = Minicc.Programs.matmul ~n:6 ~reps:3

let compile () = (Minicc.Driver.compile src).Minicc.Driver.image

(* --- Figure 1: all three flows agree ---------------------------------------- *)

let build_mutator binary =
  let m = Core.create_mutator binary in
  let c = Core.create_counter m "multiply_calls" in
  Core.insert m (Core.at_entry binary "multiply") [ Codegen_api.Snippet.incr c ];
  (m, c)

let test_flows_agree () =
  let binary = Core.open_image (compile ()) in
  (* static *)
  let m, c = build_mutator binary in
  let p = Rvsim.Loader.load (Core.rewrite m) in
  let stop, out_static = Rvsim.Loader.run p in
  checki "static exit" 0
    (match stop with Rvsim.Machine.Exited n -> n | _ -> -1);
  let static_count =
    Rvsim.Mem.read64 p.Rvsim.Loader.machine.Rvsim.Machine.mem
      c.Codegen_api.Snippet.v_addr
  in
  (* dynamic create *)
  let m, c = build_mutator binary in
  let proc = Core.launch (Core.image binary) in
  Core.instrument_process m proc;
  let _ = Core.continue_ proc in
  let create_count = Core.read_counter proc c in
  (* dynamic attach (after stopping at main) *)
  let m, c = build_mutator binary in
  let raw = Rvsim.Loader.load (Core.image binary) in
  let proc2 = Core.attach raw in
  Core.instrument_process m proc2;
  let _ = Core.continue_ proc2 in
  let attach_count = Core.read_counter proc2 c in
  check64 "static = 3" 3L static_count;
  check64 "create agrees" static_count create_count;
  check64 "attach agrees" static_count attach_count;
  (* behaviour preserved: instrumented stdout is still a time print *)
  checkb "output intact" true (String.length out_static > 0)

(* --- determinism --------------------------------------------------------------- *)

let test_rewrite_deterministic () =
  let binary = Core.open_image (compile ()) in
  let once () =
    let m, _ = build_mutator binary in
    Elfkit.Write.to_bytes (Core.rewrite m)
  in
  checkb "byte-identical rewrites" true (Bytes.equal (once ()) (once ()))

(* --- second-generation instrumentation ------------------------------------------ *)

let test_reinstrument_rewritten () =
  (* instrument, rewrite to a new image, open THAT image and instrument
     again with a different counter: both counters must work *)
  let binary = Core.open_image (compile ()) in
  let m1, c1 = build_mutator binary in
  let img1 = Core.rewrite m1 in
  let binary2 = Core.open_image img1 in
  let m2 = Core.create_mutator binary2 in
  let c2 = Core.create_counter m2 "init_calls" in
  Core.insert m2 (Core.at_entry binary2 "init") [ Codegen_api.Snippet.incr c2 ];
  let img2 = Core.rewrite m2 in
  let p = Rvsim.Loader.load img2 in
  let stop, _ = Rvsim.Loader.run p in
  checki "exit" 0 (match stop with Rvsim.Machine.Exited n -> n | _ -> -1);
  let rd (v : Codegen_api.Snippet.var) =
    Rvsim.Mem.read64 p.Rvsim.Loader.machine.Rvsim.Machine.mem
      v.Codegen_api.Snippet.v_addr
  in
  check64 "first-generation counter still counts" 3L (rd c1);
  check64 "second-generation counter counts" 1L (rd c2)

(* --- disk round trip -------------------------------------------------------------- *)

let test_disk_round_trip () =
  let binary = Core.open_image (compile ()) in
  let m, c = build_mutator binary in
  let path = Filename.temp_file "dyninst_it" ".elf" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Core.rewrite_to_file m path;
      let p = Rvsim.Loader.load_file path in
      let _ = Rvsim.Loader.run p in
      check64 "counter from reloaded file" 3L
        (Rvsim.Mem.read64 p.Rvsim.Loader.machine.Rvsim.Machine.mem
           c.Codegen_api.Snippet.v_addr))

(* --- Figure 2 components ------------------------------------------------------------ *)

let test_components_complete () =
  let names = List.map fst Core.components in
  List.iter
    (fun required ->
      checkb (required ^ " present") true (List.mem required names))
    [ "SymtabAPI"; "InstructionAPI"; "ParseAPI"; "DataflowAPI"; "CodeGenAPI";
      "PatchAPI"; "ProcControlAPI"; "StackwalkerAPI" ];
  (* key information-flow edges from the paper's Figure 2 *)
  let deps c = List.assoc c Core.components in
  checkb "ParseAPI uses SymtabAPI" true (List.mem "SymtabAPI" (deps "ParseAPI"));
  checkb "ParseAPI uses InstructionAPI" true
    (List.mem "InstructionAPI" (deps "ParseAPI"));
  checkb "DataflowAPI uses ParseAPI" true (List.mem "ParseAPI" (deps "DataflowAPI"));
  checkb "PatchAPI uses CodeGenAPI" true (List.mem "CodeGenAPI" (deps "PatchAPI"))

(* --- profile-driven codegen over the facade ------------------------------------------ *)

let test_profile_flows_to_codegen () =
  (* a binary whose attributes claim no M extension: a Times snippet must
     be rejected end-to-end through the facade *)
  let open Riscv in
  let r =
    Asm.assemble ~base:0x10000L
      Asm.[ Label "main"; Insn (Build.addi Reg.a7 Reg.zero 93); Insn Build.ecall ]
  in
  let attrs =
    Elfkit.Attributes.section_of
      { Elfkit.Attributes.empty with arch = Some "rv64i_zicsr" }
  in
  let img =
    Elfkit.Types.image ~entry:0x10000L
      ~symbols:[ Elfkit.Types.symbol "main" 0x10000L ~sym_section:".text" ]
      [
        Elfkit.Types.section ".text" r.Asm.code ~s_addr:0x10000L
          ~s_flags:Elfkit.Types.(shf_alloc lor shf_execinstr);
        attrs;
      ]
  in
  let binary = Core.open_image img in
  checks "profile" "rv64i_zicsr" (Ext.arch_string (Core.profile binary));
  let m = Core.create_mutator binary in
  let v = Core.create_counter m "v" in
  Core.insert m (Core.at_entry binary "main")
    [ Codegen_api.Snippet.Set
        (v, Codegen_api.Snippet.Bin
              (Codegen_api.Snippet.Times, Codegen_api.Snippet.Var v,
               Codegen_api.Snippet.Const 3L)) ];
  checkb "Times rejected without M" true
    (match Core.rewrite m with
    | exception Codegen_api.Codegen.Codegen_error _ -> true
    | _ -> false)

let () =
  Alcotest.run "integration"
    [
      ( "flows",
        [
          Alcotest.test_case "three flows agree" `Quick test_flows_agree;
          Alcotest.test_case "deterministic rewriting" `Quick
            test_rewrite_deterministic;
          Alcotest.test_case "re-instrument a rewritten binary" `Quick
            test_reinstrument_rewritten;
          Alcotest.test_case "disk round trip" `Quick test_disk_round_trip;
        ] );
      ( "components",
        [
          Alcotest.test_case "map complete" `Quick test_components_complete;
          Alcotest.test_case "profile reaches codegen" `Quick
            test_profile_flows_to_codegen;
        ] );
    ]
