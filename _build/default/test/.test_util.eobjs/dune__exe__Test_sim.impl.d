test/test_sim.ml: Alcotest Asm Build Bytes Elfkit Encode Insn Int64 Loader Machine Op Option Reg Riscv Rvsim String
