test/test_util.ml: Alcotest Bits Byte_buf Digraph Dyn_util Int64 Interval_map List QCheck QCheck_alcotest
