test/test_proc.mli:
