test/test_elf.ml: Alcotest Attributes Bytes Char Elfkit Filename Fun Int64 List Option QCheck QCheck_alcotest Read Sys Types Write
