test/test_minicc.ml: Alcotest Ccodegen Codegen_api Cparse Driver List Minicc Option Parse_api Patch_api Printf Programs Riscv Rvsim String Symtab
