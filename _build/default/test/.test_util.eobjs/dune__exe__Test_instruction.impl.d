test/test_instruction.ml: Alcotest Asm Build Insn Instruction List Op Option Reg Riscv
