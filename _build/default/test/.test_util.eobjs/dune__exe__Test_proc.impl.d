test/test_proc.ml: Alcotest Asm Build Bytes Codegen_api Core Elfkit Int64 List Minicc Obj Option Printf Proccontrol_api Reg Riscv Rvsim Stackwalker_api String Symtab
