test/test_patch.ml: Alcotest Asm Build Bytes Cfg Codegen Codegen_api Elfkit Encode Ext Int64 List Op Option Parse_api Parser Patch_api Point Reg Rewriter Riscv Rvsim Snippet Symtab
