test/test_sail.mli:
