test/test_parse.mli:
