test/test_fuzz.ml: Alcotest Buffer Cisc Codegen_api Core Hashtbl Instruction Int64 List Minicc Parse_api QCheck QCheck_alcotest Rvsim String Symtab
