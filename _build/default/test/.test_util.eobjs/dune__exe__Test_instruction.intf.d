test/test_instruction.mli:
