test/test_cisc.mli:
