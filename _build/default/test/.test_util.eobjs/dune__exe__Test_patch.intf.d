test/test_patch.mli:
