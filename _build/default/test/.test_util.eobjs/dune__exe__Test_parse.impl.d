test/test_parse.ml: Alcotest Asm Build Bytes Cfg Dyn_util Elfkit Format Hashtbl Instruction Int64 List Loops Op Option Parse_api Parser Printf Reg Riscv String Symtab
