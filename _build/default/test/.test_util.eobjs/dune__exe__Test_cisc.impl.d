test/test_cisc.ml: Alcotest Buffer Bytes Char Cisc Int32 Int64 List Minicc Printf QCheck QCheck_alcotest Rvsim
