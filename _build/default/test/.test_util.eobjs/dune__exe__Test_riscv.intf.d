test/test_riscv.mli:
