test/test_integration.ml: Alcotest Asm Build Bytes Codegen_api Core Elfkit Ext Filename Fun List Minicc Reg Riscv Rvsim String Sys
