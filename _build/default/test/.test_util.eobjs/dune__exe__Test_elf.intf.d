test/test_elf.mli:
