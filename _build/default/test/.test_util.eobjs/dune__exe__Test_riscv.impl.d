test/test_riscv.ml: Alcotest Array Asm Build Bytes Decode Dyn_util Encode Ext Insn Int32 Int64 List Op Option QCheck QCheck_alcotest Reg Result Riscv
