test/test_minicc.mli:
