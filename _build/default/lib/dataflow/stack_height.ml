(* Stack-height analysis (DataflowAPI, paper §2.1): for each point in a
   function, the displacement of sp relative to its value at function
   entry.  StackwalkerAPI's sp-only frame stepper is built on this —
   essential on RISC-V where compilers rarely keep a frame pointer
   (paper §3.2.7). *)

open Riscv
open Parse_api

type height = Known of int | Unknown

let merge a b =
  match (a, b) with
  | Known x, Known y when x = y -> Known x
  | Known _, Known _ -> Unknown
  | Unknown, _ | _, Unknown -> Unknown

(* Effect of one instruction on the sp delta. *)
let step_insn (ins : Instruction.t) (h : height) : height =
  match h with
  | Unknown -> Unknown
  | Known d -> (
      let i = ins.Instruction.insn in
      let writes_sp = List.mem Reg.sp (Riscv.Insn.defs i) in
      if not writes_sp then Known d
      else
        match i.Riscv.Insn.op with
        | Op.ADDI when i.Riscv.Insn.rs1 = Reg.sp ->
            Known (d + Riscv.Insn.imm_int i)
        | _ -> Unknown)

type t = {
  entry_in : (int64, height) Hashtbl.t; (* height at block entry *)
}

let analyze (cfg : Cfg.t) (func : Cfg.func) : t =
  (* absent from the table = not yet reached (bottom) *)
  let table = Hashtbl.create 16 in
  Hashtbl.replace table func.Cfg.f_entry (Known 0);
  let blocks = Cfg.blocks_of cfg func in
  let changed = ref true in
  let iterations = ref 0 in
  while !changed && !iterations < 1000 do
    incr iterations;
    changed := false;
    List.iter
      (fun (b : Cfg.block) ->
        match Hashtbl.find_opt table b.Cfg.b_start with
        | None -> () (* unreached so far *)
        | Some h_in ->
            let out =
              List.fold_left (fun h i -> step_insn i h) h_in b.Cfg.b_insns
            in
            List.iter
              (fun succ ->
                let next =
                  match Hashtbl.find_opt table succ with
                  | None -> Some out
                  | Some cur ->
                      let m = merge cur out in
                      if m <> cur then Some m else None
                in
                match next with
                | Some v ->
                    Hashtbl.replace table succ v;
                    changed := true
                | None -> ())
              (Cfg.intra_succs b))
      blocks
  done;
  { entry_in = table }

let at_block_entry t baddr =
  Option.value (Hashtbl.find_opt t.entry_in baddr) ~default:Unknown

(* Height immediately before the instruction at [addr] within [b]. *)
let before t (b : Cfg.block) addr =
  let rec go h = function
    | [] -> h
    | ins :: rest ->
        if Int64.compare ins.Instruction.addr addr >= 0 then h
        else go (step_insn ins h) rest
  in
  go (at_block_entry t b.Cfg.b_start) b.Cfg.b_insns

(* Frame size estimate: the most negative height seen anywhere (i.e. the
   deepest sp extension), reported as a positive byte count. *)
let frame_size t =
  Hashtbl.fold
    (fun _ h acc ->
      match h with Known d when -d > acc -> -d | _ -> acc)
    t.entry_in 0
