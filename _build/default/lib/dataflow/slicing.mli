(** Forward and backward slicing (DataflowAPI, paper §2.1): which
    instructions affected a value, and which instructions a value
    affects.  Intraprocedural, over {!Reaching} def-use chains, with
    instruction semantics from the SAIL pipeline; memory is handled
    conservatively (a load may depend on any store in the function)
    when [follow_memory] is on. *)

module I64Set : Set.S with type elt = int64

type slice = {
  s_insns : I64Set.t;  (** addresses of the instructions in the slice *)
  s_complete : bool;
      (** [false] when the slice hit an unresolved dependency: a value
          flowing in from the caller, or memory with [follow_memory]
          off *)
}

(** [backward cfg f ~addr ~reg] — instructions that contributed to the
    value [reg] holds just before [addr] (the analysis ParseAPI's jalr
    classification conceptually relies on, §3.2.3). *)
val backward :
  ?follow_memory:bool ->
  Parse_api.Cfg.t ->
  Parse_api.Cfg.func ->
  addr:int64 ->
  reg:Riscv.Reg.t ->
  slice

(** [forward cfg f ~addr] — instructions transitively affected by the
    definitions the instruction at [addr] performs. *)
val forward :
  ?follow_memory:bool -> Parse_api.Cfg.t -> Parse_api.Cfg.func -> addr:int64 -> slice
