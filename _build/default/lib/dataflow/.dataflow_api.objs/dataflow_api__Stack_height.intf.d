lib/dataflow/stack_height.mli: Instruction Parse_api
