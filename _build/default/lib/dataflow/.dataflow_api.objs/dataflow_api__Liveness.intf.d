lib/dataflow/liveness.mli: Parse_api Regset Riscv
