lib/dataflow/liveness.ml: Cfg Hashtbl Instruction Int64 List Option Parse_api Reg Regset Riscv
