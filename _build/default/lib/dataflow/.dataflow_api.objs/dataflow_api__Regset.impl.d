lib/dataflow/regset.ml: Format List Riscv String
