lib/dataflow/stack_height.ml: Cfg Hashtbl Instruction Int64 List Op Option Parse_api Reg Riscv
