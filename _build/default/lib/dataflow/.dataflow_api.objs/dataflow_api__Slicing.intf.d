lib/dataflow/slicing.mli: Parse_api Riscv Set
