lib/dataflow/semantics.ml: Insn List Op Reg Riscv Sailsem
