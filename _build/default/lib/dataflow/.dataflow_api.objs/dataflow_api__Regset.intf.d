lib/dataflow/regset.mli: Format Riscv
