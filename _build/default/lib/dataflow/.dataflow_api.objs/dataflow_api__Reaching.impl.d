lib/dataflow/reaching.ml: Array Cfg Hashtbl Instruction Int Int64 List Option Parse_api Riscv Semantics Set
