lib/dataflow/semantics.mli: Riscv
