lib/dataflow/slicing.ml: Cfg Hashtbl Instruction Int64 List Parse_api Queue Reaching Riscv Semantics Set
