(* Register def/use information derived from the SAIL semantics pipeline
   (paper §3.2.4: "dataflow analysis ... relies on rigorous instruction
   semantics").  The hand-written tables in [Riscv.Insn] exist as a
   fallback and as a cross-check — the test suite asserts both sources
   agree for every opcode. *)

open Riscv

let field_value (i : Insn.t) = function
  | Sailsem.Ir.F_rd -> i.Insn.rd
  | Sailsem.Ir.F_rs1 -> i.Insn.rs1
  | Sailsem.Ir.F_rs2 -> i.Insn.rs2
  | Sailsem.Ir.F_rs3 -> i.Insn.rs3

(* fcsr participation of CSR instructions depends on the CSR number. *)
let is_fcsr_csr csr = csr >= 1 && csr <= 3

let is_csr_op = function
  | Op.CSRRW | Op.CSRRS | Op.CSRRC | Op.CSRRWI | Op.CSRRSI | Op.CSRRCI -> true
  | _ -> false

(* (defs, uses) as flat Reg ids, from the semantic summary. *)
let defs_uses_of_summary (i : Insn.t) (s : Sailsem.Ir.summary) =
  let xs fields = List.filter_map
      (fun f ->
        let r = field_value i f in
        if r = 0 then None else Some (Reg.x r))
      fields
  in
  let fs fields = List.map (fun f -> Reg.f (field_value i f)) fields in
  let defs = xs s.Sailsem.Ir.writes_x @ fs s.Sailsem.Ir.writes_f in
  let uses = xs s.Sailsem.Ir.reads_x @ fs s.Sailsem.Ir.reads_f in
  let defs = if s.Sailsem.Ir.sets_fcsr then Reg.fcsr :: defs else defs in
  let defs, uses =
    if is_csr_op i.Insn.op && is_fcsr_csr i.Insn.csr then
      (Reg.fcsr :: defs, Reg.fcsr :: uses)
    else (defs, uses)
  in
  (List.sort_uniq compare defs, List.sort_uniq compare uses)

(* Def/use for an instruction: semantics-derived when the pipeline covers
   the opcode, else the hand-written tables. *)
let defs_uses (i : Insn.t) =
  match Sailsem.Sail.sem_of_op i.Insn.op with
  | Some sem -> defs_uses_of_summary i (Sailsem.Ir.summarize sem)
  | None ->
      (List.sort_uniq compare (Insn.defs i), List.sort_uniq compare (Insn.uses i))

let defs i = fst (defs_uses i)
let uses i = snd (defs_uses i)

(* Hand-written table view with the same CSR/fcsr convention, for the
   cross-check test. *)
let defs_uses_handwritten (i : Insn.t) =
  let defs = Insn.defs i and uses = Insn.uses i in
  let defs, uses =
    if is_csr_op i.Insn.op && is_fcsr_csr i.Insn.csr then
      (Reg.fcsr :: defs, Reg.fcsr :: uses)
    else (defs, uses)
  in
  (List.sort_uniq compare defs, List.sort_uniq compare uses)

let touches_memory (op : Op.t) =
  match Sailsem.Sail.summary_of_op op with
  | Some s -> (s.Sailsem.Ir.reads_mem, s.Sailsem.Ir.writes_mem)
  | None -> (Op.is_load op || Op.is_amo op, Op.is_store op || Op.is_amo op)
