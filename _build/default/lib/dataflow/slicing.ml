(* Forward and backward slicing (DataflowAPI, paper §2.1): which
   instructions affected a value (backward) and which instructions a
   value affects (forward).  Intraprocedural, over the def-use chains of
   [Reaching]; memory is handled conservatively (a load may depend on any
   store in the function) when [follow_memory] is set. *)

open Parse_api
module I64Set = Set.Make (Int64)

type slice = { s_insns : I64Set.t; s_complete : bool }
(* [s_complete] is false when the slice hit an unresolved dependency
   (e.g. a memory load with follow_memory off, or a register live at
   function entry, so values flow in from callers). *)

let block_of_addr (cfg : Cfg.t) addr = Cfg.block_containing cfg addr

let insn_at (b : Cfg.block) addr =
  List.find_opt (fun i -> Int64.equal i.Instruction.addr addr) b.Cfg.b_insns

let stores_in (blocks : Cfg.block list) =
  List.concat_map
    (fun (b : Cfg.block) ->
      List.filter
        (fun i -> snd (Semantics.touches_memory (Instruction.op i)))
        b.Cfg.b_insns)
    blocks

(* Backward slice from the value of [reg] just before [addr]. *)
let backward ?(follow_memory = true) (cfg : Cfg.t) (func : Cfg.func)
    ~(addr : int64) ~(reg : Riscv.Reg.t) : slice =
  let rd = Reaching.analyze cfg func in
  let blocks = Cfg.blocks_of cfg func in
  let slice = ref I64Set.empty in
  let complete = ref true in
  let seen = Hashtbl.create 64 in
  let work = Queue.create () in
  Queue.add (addr, reg) work;
  while not (Queue.is_empty work) do
    let a, r = Queue.pop work in
    if not (Hashtbl.mem seen (a, r)) then begin
      Hashtbl.replace seen (a, r) ();
      match block_of_addr cfg a with
      | None -> complete := false
      | Some b ->
          let defs = Reaching.defs_reaching rd b a r in
          if defs = [] then
            (* the value flows in from outside the function *)
            complete := false
          else
            List.iter
              (fun daddr ->
                if not (I64Set.mem daddr !slice) then begin
                  slice := I64Set.add daddr !slice;
                  match block_of_addr cfg daddr with
                  | None -> complete := false
                  | Some db -> (
                      match insn_at db daddr with
                      | None -> complete := false
                      | Some dins ->
                          (* the defining instruction's own inputs *)
                          List.iter
                            (fun ur -> Queue.add (daddr, ur) work)
                            (Semantics.uses dins.Instruction.insn);
                          (* memory dependence *)
                          let reads_mem, _ =
                            Semantics.touches_memory (Instruction.op dins)
                          in
                          if reads_mem then
                            if follow_memory then
                              List.iter
                                (fun (st : Instruction.t) ->
                                  let sa = st.Instruction.addr in
                                  if not (I64Set.mem sa !slice) then begin
                                    slice := I64Set.add sa !slice;
                                    List.iter
                                      (fun ur -> Queue.add (sa, ur) work)
                                      (Semantics.uses st.Instruction.insn)
                                  end)
                                (stores_in blocks)
                            else complete := false)
                end)
              defs
    end
  done;
  { s_insns = !slice; s_complete = !complete }

(* Forward slice: instructions (transitively) affected by the definition
   performed at [addr]. *)
let forward ?(follow_memory = true) (cfg : Cfg.t) (func : Cfg.func)
    ~(addr : int64) : slice =
  let rd = Reaching.analyze cfg func in
  let blocks = Cfg.blocks_of cfg func in
  let slice = ref I64Set.empty in
  let complete = ref true in
  let seen = Hashtbl.create 64 in
  let work = Queue.create () in
  (* seed: all registers defined at [addr] *)
  (match block_of_addr cfg addr with
  | None -> complete := false
  | Some b -> (
      match insn_at b addr with
      | None -> complete := false
      | Some ins ->
          List.iter
            (fun r -> Queue.add (addr, r) work)
            (Semantics.defs ins.Instruction.insn);
          let _, writes_mem = Semantics.touches_memory (Instruction.op ins) in
          if writes_mem && follow_memory then
            (* any load in the function may observe this store *)
            List.iter
              (fun (b : Cfg.block) ->
                List.iter
                  (fun (li : Instruction.t) ->
                    if fst (Semantics.touches_memory (Instruction.op li)) then begin
                      slice := I64Set.add li.Instruction.addr !slice;
                      List.iter
                        (fun r -> Queue.add (li.Instruction.addr, r) work)
                        (Semantics.defs li.Instruction.insn)
                    end)
                  b.Cfg.b_insns)
              blocks));
  while not (Queue.is_empty work) do
    let daddr, r = Queue.pop work in
    if not (Hashtbl.mem seen (daddr, r)) then begin
      Hashtbl.replace seen (daddr, r) ();
      let users = Reaching.uses_reached rd cfg daddr r in
      List.iter
        (fun ua ->
          if not (I64Set.mem ua !slice) then begin
            slice := I64Set.add ua !slice;
            match block_of_addr cfg ua with
            | None -> complete := false
            | Some ub -> (
                match insn_at ub ua with
                | None -> complete := false
                | Some uins ->
                    List.iter
                      (fun dr -> Queue.add (ua, dr) work)
                      (Semantics.defs uins.Instruction.insn))
          end)
        users
    end
  done;
  { s_insns = !slice; s_complete = !complete }
