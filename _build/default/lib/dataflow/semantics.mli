(** Register def/use information derived from the SAIL semantics pipeline
    (paper §3.2.4: dataflow "relies on rigorous instruction semantics").
    The hand-written tables in {!Riscv.Insn} serve as fallback and as a
    cross-check — the test suite asserts both sources agree for every
    opcode. *)

(** (definitions, uses) as sorted flat {!Riscv.Reg.t} ids; semantics-
    derived when the pipeline covers the opcode, hand-written otherwise.
    CSR instructions touching fflags/frm/fcsr (csr numbers 1..3) also
    def+use the fcsr pseudo-register. *)
val defs_uses : Riscv.Insn.t -> Riscv.Reg.t list * Riscv.Reg.t list

val defs : Riscv.Insn.t -> Riscv.Reg.t list
val uses : Riscv.Insn.t -> Riscv.Reg.t list

(** The hand-written-table view under the same CSR convention (used by
    the agreement test). *)
val defs_uses_handwritten : Riscv.Insn.t -> Riscv.Reg.t list * Riscv.Reg.t list

(** (reads_memory, writes_memory) from the semantic summary. *)
val touches_memory : Riscv.Op.t -> bool * bool

(**/**)

val is_fcsr_csr : int -> bool
val is_csr_op : Riscv.Op.t -> bool
