(* Reaching definitions over a function's registers: the def-use chains
   that back both slicing directions. *)

open Parse_api
module IntSet = Set.Make (Int)

type def_site = { d_addr : int64; d_reg : Riscv.Reg.t }

type t = {
  sites : def_site array; (* all definition sites, indexed *)
  site_index : (int64 * Riscv.Reg.t, int) Hashtbl.t;
  in_sets : (int64, IntSet.t) Hashtbl.t; (* block start -> reaching defs *)
  blocks : Cfg.block list;
}

let defs_of_insn (ins : Instruction.t) = Semantics.defs ins.Instruction.insn
let uses_of_insn (ins : Instruction.t) = Semantics.uses ins.Instruction.insn

let analyze (cfg : Cfg.t) (func : Cfg.func) : t =
  let blocks = Cfg.blocks_of cfg func in
  (* enumerate definition sites *)
  let sites = ref [] in
  let site_index = Hashtbl.create 64 in
  List.iter
    (fun (b : Cfg.block) ->
      List.iter
        (fun ins ->
          List.iter
            (fun r ->
              let key = (ins.Instruction.addr, r) in
              if not (Hashtbl.mem site_index key) then begin
                Hashtbl.replace site_index key (List.length !sites);
                sites := { d_addr = ins.Instruction.addr; d_reg = r } :: !sites
              end)
            (defs_of_insn ins))
        b.Cfg.b_insns)
    blocks;
  let sites = Array.of_list (List.rev !sites) in
  let n = Array.length sites in
  (* per-register site sets for kill computation *)
  let sites_of_reg = Hashtbl.create 32 in
  Array.iteri
    (fun k s ->
      let cur =
        Option.value (Hashtbl.find_opt sites_of_reg s.d_reg) ~default:IntSet.empty
      in
      Hashtbl.replace sites_of_reg s.d_reg (IntSet.add k cur))
    sites;
  let all_of_reg r =
    Option.value (Hashtbl.find_opt sites_of_reg r) ~default:IntSet.empty
  in
  (* gen/kill per block *)
  let gen = Hashtbl.create 16 and kill = Hashtbl.create 16 in
  List.iter
    (fun (b : Cfg.block) ->
      let g = ref IntSet.empty and k = ref IntSet.empty in
      List.iter
        (fun ins ->
          List.iter
            (fun r ->
              let self = Hashtbl.find site_index (ins.Instruction.addr, r) in
              k := IntSet.union !k (all_of_reg r);
              g := IntSet.add self (IntSet.diff !g (all_of_reg r)))
            (defs_of_insn ins))
        b.Cfg.b_insns;
      Hashtbl.replace gen b.Cfg.b_start !g;
      Hashtbl.replace kill b.Cfg.b_start (IntSet.diff !k !g))
    blocks;
  (* forward fixpoint *)
  let in_sets = Hashtbl.create 16 in
  List.iter
    (fun (b : Cfg.block) -> Hashtbl.replace in_sets b.Cfg.b_start IntSet.empty)
    blocks;
  let out_of b =
    let i = Hashtbl.find in_sets b.Cfg.b_start in
    IntSet.union
      (Hashtbl.find gen b.Cfg.b_start)
      (IntSet.diff i (Hashtbl.find kill b.Cfg.b_start))
  in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (b : Cfg.block) ->
        let out = out_of b in
        List.iter
          (fun succ ->
            match Hashtbl.find_opt in_sets succ with
            | None -> ()
            | Some cur ->
                let merged = IntSet.union cur out in
                if not (IntSet.equal merged cur) then begin
                  Hashtbl.replace in_sets succ merged;
                  changed := true
                end)
          (Cfg.intra_succs b))
      blocks
  done;
  ignore n;
  { sites; site_index; in_sets; blocks }

(* Definitions of [reg] reaching the program point just before [addr]
   inside block [b]: walk the block forward, tracking local kills. *)
let defs_reaching (t : t) (b : Cfg.block) (addr : int64) (reg : Riscv.Reg.t) :
    int64 list =
  let entry =
    Option.value (Hashtbl.find_opt t.in_sets b.Cfg.b_start) ~default:IntSet.empty
  in
  let current =
    IntSet.filter (fun k -> t.sites.(k).d_reg = reg) entry
    |> IntSet.elements
    |> List.map (fun k -> t.sites.(k).d_addr)
  in
  let rec walk current = function
    | [] -> current
    | ins :: rest ->
        if Int64.compare ins.Instruction.addr addr >= 0 then current
        else
          let current =
            if List.mem reg (defs_of_insn ins) then [ ins.Instruction.addr ]
            else current
          in
          walk current rest
  in
  walk current b.Cfg.b_insns

(* All (use-site, reg) pairs in the function that a definition at
   [daddr] of [reg] reaches. *)
let uses_reached (t : t) (cfg : Cfg.t) (daddr : int64) (reg : Riscv.Reg.t) :
    int64 list =
  ignore cfg;
  let result = ref [] in
  List.iter
    (fun (b : Cfg.block) ->
      List.iter
        (fun ins ->
          if List.mem reg (uses_of_insn ins) then
            let reaching = defs_reaching t b ins.Instruction.addr reg in
            if List.exists (Int64.equal daddr) reaching then
              result := ins.Instruction.addr :: !result)
        b.Cfg.b_insns)
    t.blocks;
  List.sort_uniq Int64.compare !result
