(** Stack-height analysis (DataflowAPI, paper §2.1): for each point of a
    function, the displacement of sp relative to its value at entry.
    StackwalkerAPI's sp-only frame stepper is built on this — essential
    on RISC-V, where compilers rarely keep a frame pointer (§3.2.7). *)

type height =
  | Known of int  (** sp = entry_sp + n (n is usually negative) *)
  | Unknown  (** e.g. after a dynamic allocation or conflicting paths *)

type t

val analyze : Parse_api.Cfg.t -> Parse_api.Cfg.func -> t

(** Height on entry to the block starting at the given address. *)
val at_block_entry : t -> int64 -> height

(** Height immediately before the instruction at [addr] within [block]. *)
val before : t -> Parse_api.Cfg.block -> int64 -> height

(** The deepest sp extension observed, as a positive byte count — an
    estimate of the frame size. *)
val frame_size : t -> int

(**/**)

val merge : height -> height -> height
val step_insn : Instruction.t -> height -> height
