lib/codegen/snippet.ml: List Riscv
