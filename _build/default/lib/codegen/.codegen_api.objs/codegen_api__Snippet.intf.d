lib/codegen/snippet.mli: Riscv
