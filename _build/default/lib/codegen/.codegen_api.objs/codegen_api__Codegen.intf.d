lib/codegen/codegen.mli: Riscv Snippet
