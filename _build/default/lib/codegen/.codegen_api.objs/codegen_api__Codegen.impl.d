lib/codegen/codegen.ml: Asm Build Dyn_util Ext Format Int64 List Op Printf Reg Riscv Snippet
