(** CodeGenAPI (paper §2.2, §3.2.5): lower machine-independent snippet
    ASTs to RV64GC instruction sequences.

    Extension awareness (§3.1.1): the target profile — discovered by
    SymtabAPI from the mutatee — is consulted before emitting any
    instruction from an optional extension; a [Divide] snippet against a
    profile without M raises {!Codegen_error} instead of planting an
    illegal instruction.  Immediate materialization uses the
    lui/addi/slli expansions the paper describes, with the low 12 bits of
    variable addresses folded into access offsets when possible. *)

exception Codegen_error of string

type ctx = {
  profile : Riscv.Ext.profile;
  scratch : Riscv.Reg.t list;
      (** integer registers the snippet may clobber — dead registers when
          liveness permits, else borrowed+spilled by PatchAPI *)
  mutable label_counter : int;
  label_prefix : string;
}

(** @raise Codegen_error if a scratch register is not an allocatable
    integer register. *)
val create_ctx :
  ?label_prefix:string ->
  profile:Riscv.Ext.profile ->
  scratch:Riscv.Reg.t list ->
  unit ->
  ctx

(** Generate assembler items for a snippet.
    @raise Codegen_error when the snippet needs an absent extension or
    more scratch registers than [ctx] provides. *)
val generate : ctx -> Snippet.stmt list -> Riscv.Asm.item list

(**/**)

val materialize_addr : Riscv.Reg.t -> int64 -> Riscv.Asm.item list * Riscv.Reg.t * int
val fresh_label : ctx -> string -> string
val require : ctx -> Riscv.Ext.t -> string -> unit
