(* Surface AST of the mini-SAIL language.

   The real RISC-V SAIL model defines one `function clause execute`
   per instruction; our surface syntax keeps that shape:

     function clause execute (ADDI(rd, rs1, imm)) = {
       X(rd) = X(rs1) + imm;
       RETIRE_SUCCESS
     }

   Error-handling constructs (trap / assert / check_ prefixed calls) are
   parsed explicitly so the simplification pass can strip them (§3.2.4:
   the formal
   model "contains many details related to error handling ... important
   for formal verification or emulators, but not for dataflow
   analysis"). *)

type binop =
  | Add | Sub | Mul | DivS | RemS
  | And | Or | Xor
  | Eq | Ne | LtS | LeS | GtS | GeS

type unop = Neg | BitNot | BoolNot

type expr =
  | Int of int64
  | Ident of string (* rd/rs1/rs2/rs3/imm/csr/pc/next_pc or a let binding *)
  | XReg of string (* X(rs1): integer register read by operand field *)
  | FReg of string (* F(rs1) *)
  | Binop of binop * expr * expr
  | Unop of unop * expr
  | Call of string * expr list (* builtins or uninterpreted functions *)

type stmt =
  | AssignX of string * expr (* X(rd) = e *)
  | AssignF of string * expr (* F(rd) = e *)
  | AssignPC of expr
  | AssignFCSR of expr
  | Let of string * expr
  | MemWrite of int * expr * expr (* width-bits, address, value *)
  | If of expr * stmt list * stmt list
  | Effect of string * expr list (* csr_write(...), set_reservation(...) *)
  | Trap of string (* trap("..."), check_*(...), assert(...) *)
  | Retire (* RETIRE_SUCCESS *)
  | Skip

type clause = { name : string; args : string list; body : stmt list }
type spec = clause list
