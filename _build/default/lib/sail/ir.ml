(* The semantic IR: what the pipeline produces and what DataflowAPI
   consumes.  It mirrors the paper's "simplified JSON representation ...
   that contains essential semantics of each instruction without
   extraneous error-handling code"; [to_json]/[of_json] give the actual
   JSON form. *)

type field = F_rd | F_rs1 | F_rs2 | F_rs3

type binop =
  | Add | Sub | Mul | DivS | DivU | RemS | RemU
  | MulH | MulHU | MulHSU
  | And | Or | Xor
  | Shl | LshR | AshR
  | Eq | Ne | LtS | LeS | GtS | GeS | LtU | GeU

type unop = Neg | BitNot | BoolNot

type expr =
  | Const of int64
  | ImmVal (* the instruction's immediate *)
  | CsrVal (* the instruction's CSR index *)
  | ReadPC
  | NextPC (* pc + instruction length *)
  | Var of string (* let-bound *)
  | ReadX of field (* integer register named by an operand field *)
  | ReadF of field (* FP register named by an operand field *)
  | Load of int * expr (* width in bits, address; zero-extends *)
  | Binop of binop * expr * expr
  | Unop of unop * expr
  | SignExt of expr * int (* treat low n bits as signed *)
  | ZeroExt of expr * int
  | Opaque of string * expr list (* uninterpreted function *)

type stmt =
  | SLet of string * expr
  | SSetX of field * expr
  | SSetF of field * expr
  | SSetPC of expr
  | SSetFCSR of expr
  | SStore of int * expr * expr (* width-bits, address, value *)
  | SIf of expr * stmt list * stmt list
  | SEffect of string * expr list (* opaque state effect, e.g. csr_write *)

type sem = { sem_name : string; stmts : stmt list }

(* --- JSON encoding ------------------------------------------------------- *)

let field_name = function
  | F_rd -> "rd"
  | F_rs1 -> "rs1"
  | F_rs2 -> "rs2"
  | F_rs3 -> "rs3"

let field_of_name = function
  | "rd" -> F_rd
  | "rs1" -> F_rs1
  | "rs2" -> F_rs2
  | "rs3" -> F_rs3
  | s -> raise (Json.Parse_error ("bad field " ^ s))

let binop_name = function
  | Add -> "add" | Sub -> "sub" | Mul -> "mul" | DivS -> "divs"
  | DivU -> "divu" | RemS -> "rems" | RemU -> "remu" | MulH -> "mulh"
  | MulHU -> "mulhu" | MulHSU -> "mulhsu" | And -> "and" | Or -> "or"
  | Xor -> "xor" | Shl -> "shl" | LshR -> "lshr" | AshR -> "ashr"
  | Eq -> "eq" | Ne -> "ne" | LtS -> "lts" | LeS -> "les" | GtS -> "gts"
  | GeS -> "ges" | LtU -> "ltu" | GeU -> "geu"

let binop_of_name = function
  | "add" -> Add | "sub" -> Sub | "mul" -> Mul | "divs" -> DivS
  | "divu" -> DivU | "rems" -> RemS | "remu" -> RemU | "mulh" -> MulH
  | "mulhu" -> MulHU | "mulhsu" -> MulHSU | "and" -> And | "or" -> Or
  | "xor" -> Xor | "shl" -> Shl | "lshr" -> LshR | "ashr" -> AshR
  | "eq" -> Eq | "ne" -> Ne | "lts" -> LtS | "les" -> LeS | "gts" -> GtS
  | "ges" -> GeS | "ltu" -> LtU | "geu" -> GeU
  | s -> raise (Json.Parse_error ("bad binop " ^ s))

let unop_name = function Neg -> "neg" | BitNot -> "bitnot" | BoolNot -> "boolnot"

let unop_of_name = function
  | "neg" -> Neg
  | "bitnot" -> BitNot
  | "boolnot" -> BoolNot
  | s -> raise (Json.Parse_error ("bad unop " ^ s))

let rec expr_to_json (e : expr) : Json.t =
  let tag t rest = Json.List (Json.String t :: rest) in
  match e with
  | Const v -> tag "const" [ Json.Int v ]
  | ImmVal -> tag "imm" []
  | CsrVal -> tag "csr" []
  | ReadPC -> tag "pc" []
  | NextPC -> tag "next_pc" []
  | Var s -> tag "var" [ Json.String s ]
  | ReadX f -> tag "x" [ Json.String (field_name f) ]
  | ReadF f -> tag "f" [ Json.String (field_name f) ]
  | Load (w, a) -> tag "load" [ Json.Int (Int64.of_int w); expr_to_json a ]
  | Binop (op, a, b) ->
      tag "binop" [ Json.String (binop_name op); expr_to_json a; expr_to_json b ]
  | Unop (op, a) -> tag "unop" [ Json.String (unop_name op); expr_to_json a ]
  | SignExt (a, n) -> tag "sext" [ expr_to_json a; Json.Int (Int64.of_int n) ]
  | ZeroExt (a, n) -> tag "zext" [ expr_to_json a; Json.Int (Int64.of_int n) ]
  | Opaque (name, args) ->
      tag "opaque" (Json.String name :: List.map expr_to_json args)

let rec expr_of_json (j : Json.t) : expr =
  match j with
  | Json.List (Json.String tag :: rest) -> (
      match (tag, rest) with
      | "const", [ Json.Int v ] -> Const v
      | "imm", [] -> ImmVal
      | "csr", [] -> CsrVal
      | "pc", [] -> ReadPC
      | "next_pc", [] -> NextPC
      | "var", [ Json.String s ] -> Var s
      | "x", [ Json.String f ] -> ReadX (field_of_name f)
      | "f", [ Json.String f ] -> ReadF (field_of_name f)
      | "load", [ Json.Int w; a ] -> Load (Int64.to_int w, expr_of_json a)
      | "binop", [ Json.String op; a; b ] ->
          Binop (binop_of_name op, expr_of_json a, expr_of_json b)
      | "unop", [ Json.String op; a ] -> Unop (unop_of_name op, expr_of_json a)
      | "sext", [ a; Json.Int n ] -> SignExt (expr_of_json a, Int64.to_int n)
      | "zext", [ a; Json.Int n ] -> ZeroExt (expr_of_json a, Int64.to_int n)
      | "opaque", Json.String name :: args ->
          Opaque (name, List.map expr_of_json args)
      | _ -> raise (Json.Parse_error ("bad expr tag " ^ tag)))
  | _ -> raise (Json.Parse_error "expected expr")

let rec stmt_to_json (s : stmt) : Json.t =
  let tag t rest = Json.List (Json.String t :: rest) in
  match s with
  | SLet (x, e) -> tag "let" [ Json.String x; expr_to_json e ]
  | SSetX (f, e) -> tag "setx" [ Json.String (field_name f); expr_to_json e ]
  | SSetF (f, e) -> tag "setf" [ Json.String (field_name f); expr_to_json e ]
  | SSetPC e -> tag "setpc" [ expr_to_json e ]
  | SSetFCSR e -> tag "setfcsr" [ expr_to_json e ]
  | SStore (w, a, v) ->
      tag "store" [ Json.Int (Int64.of_int w); expr_to_json a; expr_to_json v ]
  | SIf (c, a, b) ->
      tag "if"
        [
          expr_to_json c;
          Json.List (List.map stmt_to_json a);
          Json.List (List.map stmt_to_json b);
        ]
  | SEffect (name, args) ->
      tag "effect" (Json.String name :: List.map expr_to_json args)

let rec stmt_of_json (j : Json.t) : stmt =
  match j with
  | Json.List (Json.String tag :: rest) -> (
      match (tag, rest) with
      | "let", [ Json.String x; e ] -> SLet (x, expr_of_json e)
      | "setx", [ Json.String f; e ] -> SSetX (field_of_name f, expr_of_json e)
      | "setf", [ Json.String f; e ] -> SSetF (field_of_name f, expr_of_json e)
      | "setpc", [ e ] -> SSetPC (expr_of_json e)
      | "setfcsr", [ e ] -> SSetFCSR (expr_of_json e)
      | "store", [ Json.Int w; a; v ] ->
          SStore (Int64.to_int w, expr_of_json a, expr_of_json v)
      | "if", [ c; Json.List a; Json.List b ] ->
          SIf (expr_of_json c, List.map stmt_of_json a, List.map stmt_of_json b)
      | "effect", Json.String name :: args ->
          SEffect (name, List.map expr_of_json args)
      | _ -> raise (Json.Parse_error ("bad stmt tag " ^ tag)))
  | _ -> raise (Json.Parse_error "expected stmt")

let sem_to_json (s : sem) : Json.t =
  Json.Obj
    [
      ("name", Json.String s.sem_name);
      ("stmts", Json.List (List.map stmt_to_json s.stmts));
    ]

let sem_of_json (j : Json.t) : sem =
  {
    sem_name = Json.to_str (Json.member "name" j);
    stmts = List.map stmt_of_json (Json.to_list (Json.member "stmts" j));
  }

let spec_to_json (sems : sem list) : Json.t = Json.List (List.map sem_to_json sems)

let spec_of_json (j : Json.t) : sem list = List.map sem_of_json (Json.to_list j)

(* --- effect summaries (used by liveness and parsing) --------------------- *)

(* Register operand fields read anywhere in the semantics, split into
   integer and FP fields; whether memory / pc / fcsr are touched. *)
type summary = {
  reads_x : field list;
  reads_f : field list;
  writes_x : field list;
  writes_f : field list;
  reads_mem : bool;
  writes_mem : bool;
  sets_pc : bool;
  sets_fcsr : bool;
}

let summarize (s : sem) : summary =
  let rx = ref [] and rf = ref [] and wx = ref [] and wf = ref [] in
  let rmem = ref false and wmem = ref false in
  let spc = ref false and sfcsr = ref false in
  let addf l f = if not (List.mem f !l) then l := f :: !l in
  let rec expr = function
    | Const _ | ImmVal | CsrVal | ReadPC | NextPC | Var _ -> ()
    | ReadX f -> addf rx f
    | ReadF f -> addf rf f
    | Load (_, a) ->
        rmem := true;
        expr a
    | Binop (_, a, b) ->
        expr a;
        expr b
    | Unop (_, a) -> expr a
    | SignExt (a, _) | ZeroExt (a, _) -> expr a
    | Opaque (_, args) -> List.iter expr args
  in
  let rec stmt = function
    | SLet (_, e) -> expr e
    | SSetX (f, e) ->
        addf wx f;
        expr e
    | SSetF (f, e) ->
        addf wf f;
        expr e
    | SSetPC e ->
        spc := true;
        expr e
    | SSetFCSR e ->
        sfcsr := true;
        expr e
    | SStore (_, a, v) ->
        wmem := true;
        expr a;
        expr v
    | SIf (c, a, b) ->
        expr c;
        List.iter stmt a;
        List.iter stmt b
    | SEffect (_, args) -> List.iter expr args
  in
  List.iter stmt s.stmts;
  {
    reads_x = List.rev !rx;
    reads_f = List.rev !rf;
    writes_x = List.rev !wx;
    writes_f = List.rev !wf;
    reads_mem = !rmem;
    writes_mem = !wmem;
    sets_pc = !spc;
    sets_fcsr = !sfcsr;
  }
