(* The simplification pass of the SAIL pipeline (paper §3.2.4): strips
   error-handling constructs — traps, alignment checks, jump-target
   validation — that matter to an emulator or a formal model but are
   noise for dataflow analysis.

   Rules:
     - [Trap _], [Retire] and [Skip] statements are dropped.
     - an [If] whose surviving then-branch is empty and else-branch is
       empty disappears entirely (the classic
       `if check_misaligned(x) then trap(...)` pattern);
     - an [If] with an empty then-branch but a surviving else-branch is
       flipped so the real work is in the then-branch. *)

open Ast

let rec simplify_stmts (stmts : stmt list) : stmt list =
  List.concat_map simplify_stmt stmts

and simplify_stmt (s : stmt) : stmt list =
  match s with
  | Trap _ | Retire | Skip -> []
  | If (cond, then_b, else_b) -> (
      let then_b = simplify_stmts then_b in
      let else_b = simplify_stmts else_b in
      match (then_b, else_b) with
      | [], [] -> []
      | [], else_b -> [ If (Unop (BoolNot, cond), else_b, []) ]
      | then_b, else_b -> [ If (cond, then_b, else_b) ])
  | AssignX _ | AssignF _ | AssignPC _ | AssignFCSR _ | Let _ | MemWrite _
  | Effect _ ->
      [ s ]

let simplify_clause (c : clause) : clause =
  { c with body = simplify_stmts c.body }

let simplify (spec : spec) : spec = List.map simplify_clause spec

(* Count error-handling statements, used to report what the pass removed
   (and in tests to assert the raw spec actually contains them). *)
let rec count_error_handling_stmts stmts =
  List.fold_left
    (fun acc s ->
      match s with
      | Trap _ -> acc + 1
      | If (_, a, b) ->
          acc + count_error_handling_stmts a + count_error_handling_stmts b
      | _ -> acc)
    0 stmts

let count_error_handling (spec : spec) =
  List.fold_left (fun acc c -> acc + count_error_handling_stmts c.body) 0 spec
