(* An evaluator for the semantic IR.

   This is the "executable model" side of SAIL: given a concrete
   instruction and an abstract machine state, execute the IR statements.
   Its primary use is the agreement test suite, which checks that the
   semantics pipeline and the hand-written simulator compute identical
   results for randomly generated instructions — the strongest evidence
   we can offer that the dataflow semantics are faithful. *)

open Dyn_util

type state = {
  get_x : int -> int64;
  set_x : int -> int64 -> unit;
  get_f : int -> int64; (* raw bits *)
  set_f : int -> int64 -> unit;
  load : int -> int64 -> int64; (* width-bits -> addr -> zero-extended *)
  store : int -> int64 -> int64 -> unit;
  csr_read : int -> int64;
  csr_write : int -> int64 -> unit;
  get_fcsr : unit -> int64;
  set_fcsr : int64 -> unit;
  mutable reservation : int64 option;
}

exception Eval_error of string

let fail fmt = Format.kasprintf (fun s -> raise (Eval_error s)) fmt

let bool_to_v b = if b then 1L else 0L

let eval_binop (op : Ir.binop) (a : int64) (b : int64) : int64 =
  let sh = Int64.to_int (Int64.logand b 63L) in
  match op with
  | Ir.Add -> Int64.add a b
  | Ir.Sub -> Int64.sub a b
  | Ir.Mul -> Int64.mul a b
  | Ir.DivS -> if b = 0L then fail "division by zero in semantics" else Int64.div a b
  | Ir.DivU -> if b = 0L then fail "division by zero in semantics" else Int64.unsigned_div a b
  | Ir.RemS -> if b = 0L then fail "remainder by zero in semantics" else Int64.rem a b
  | Ir.RemU -> if b = 0L then fail "remainder by zero in semantics" else Int64.unsigned_rem a b
  | Ir.MulH -> Riscv.Fpu.mulh a b
  | Ir.MulHU -> Riscv.Fpu.mulhu a b
  | Ir.MulHSU -> Riscv.Fpu.mulhsu a b
  | Ir.And -> Int64.logand a b
  | Ir.Or -> Int64.logor a b
  | Ir.Xor -> Int64.logxor a b
  | Ir.Shl -> Int64.shift_left a sh
  | Ir.LshR -> Int64.shift_right_logical a sh
  | Ir.AshR -> Int64.shift_right a sh
  | Ir.Eq -> bool_to_v (Int64.equal a b)
  | Ir.Ne -> bool_to_v (not (Int64.equal a b))
  | Ir.LtS -> bool_to_v (Int64.compare a b < 0)
  | Ir.LeS -> bool_to_v (Int64.compare a b <= 0)
  | Ir.GtS -> bool_to_v (Int64.compare a b > 0)
  | Ir.GeS -> bool_to_v (Int64.compare a b >= 0)
  | Ir.LtU -> bool_to_v (Int64.unsigned_compare a b < 0)
  | Ir.GeU -> bool_to_v (Int64.unsigned_compare a b >= 0)

let eval_unop (op : Ir.unop) (a : int64) : int64 =
  match op with
  | Ir.Neg -> Int64.neg a
  | Ir.BitNot -> Int64.lognot a
  | Ir.BoolNot -> bool_to_v (Int64.equal a 0L)

(* FP opaque functions, implemented exactly as the simulator does. *)
let eval_fp_opaque ~(insn : Riscv.Insn.t) name (args : int64 list) : int64 =
  let open Riscv.Fpu in
  let d = f64_of_bits in
  let s bits = f32_of_bits (unbox32 bits) in
  let rd f = bits_of_f64 f in
  let rs f = nan_box32 (bits_of_f32 f) in
  let sx32 = Bits.to_int32_sx in
  let rm = insn.Riscv.Insn.rm in
  match (name, args) with
  | "nan_box_32", [ a ] -> nan_box32 (Int64.to_int (Int64.logand a 0xFFFF_FFFFL))
  | "unbox_32", [ a ] -> Int64.of_int (unbox32 a)
  | "fadd_s", [ a; b ] -> rs (s a +. s b)
  | "fsub_s", [ a; b ] -> rs (s a -. s b)
  | "fmul_s", [ a; b ] -> rs (s a *. s b)
  | "fdiv_s", [ a; b ] -> rs (s a /. s b)
  | "fsqrt_s", [ a ] -> rs (Float.sqrt (s a))
  | "fmadd_s", [ a; b; c ] -> rs (Float.fma (s a) (s b) (s c))
  | "fmsub_s", [ a; b; c ] -> rs (Float.fma (s a) (s b) (-.s c))
  | "fnmsub_s", [ a; b; c ] -> rs (Float.fma (-.s a) (s b) (s c))
  | "fnmadd_s", [ a; b; c ] -> rs (Float.fma (-.s a) (s b) (-.s c))
  | "fadd_d", [ a; b ] -> rd (d a +. d b)
  | "fsub_d", [ a; b ] -> rd (d a -. d b)
  | "fmul_d", [ a; b ] -> rd (d a *. d b)
  | "fdiv_d", [ a; b ] -> rd (d a /. d b)
  | "fsqrt_d", [ a ] -> rd (Float.sqrt (d a))
  | "fmadd_d", [ a; b; c ] -> rd (Float.fma (d a) (d b) (d c))
  | "fmsub_d", [ a; b; c ] -> rd (Float.fma (d a) (d b) (-.d c))
  | "fnmsub_d", [ a; b; c ] -> rd (Float.fma (-.d a) (d b) (d c))
  | "fnmadd_d", [ a; b; c ] -> rd (Float.fma (-.d a) (d b) (-.d c))
  | "fmin_s", [ a; b ] -> rs (Float.min_num (s a) (s b))
  | "fmax_s", [ a; b ] -> rs (Float.max_num (s a) (s b))
  | "fmin_d", [ a; b ] -> rd (Float.min_num (d a) (d b))
  | "fmax_d", [ a; b ] -> rd (Float.max_num (d a) (d b))
  | "feq_s", [ a; b ] -> bool_to_v (s a = s b)
  | "flt_s", [ a; b ] -> bool_to_v (s a < s b)
  | "fle_s", [ a; b ] -> bool_to_v (s a <= s b)
  | "feq_d", [ a; b ] -> bool_to_v (d a = d b)
  | "flt_d", [ a; b ] -> bool_to_v (d a < d b)
  | "fle_d", [ a; b ] -> bool_to_v (d a <= d b)
  | "fclass_s", [ a ] -> Int64.of_int (fclass (s a))
  | "fclass_d", [ a ] -> Int64.of_int (fclass (d a))
  | "fcvt_w_s", [ a ] -> sx32 (fcvt_to_int64 ~rm ~signed:true ~width:32 (s a))
  | "fcvt_wu_s", [ a ] -> sx32 (fcvt_to_int64 ~rm ~signed:false ~width:32 (s a))
  | "fcvt_l_s", [ a ] -> fcvt_to_int64 ~rm ~signed:true ~width:64 (s a)
  | "fcvt_lu_s", [ a ] -> fcvt_to_int64 ~rm ~signed:false ~width:64 (s a)
  | "fcvt_w_d", [ a ] -> sx32 (fcvt_to_int64 ~rm ~signed:true ~width:32 (d a))
  | "fcvt_wu_d", [ a ] -> sx32 (fcvt_to_int64 ~rm ~signed:false ~width:32 (d a))
  | "fcvt_l_d", [ a ] -> fcvt_to_int64 ~rm ~signed:true ~width:64 (d a)
  | "fcvt_lu_d", [ a ] -> fcvt_to_int64 ~rm ~signed:false ~width:64 (d a)
  | "fcvt_s_w", [ a ] -> rs (Int64.to_float (sx32 a))
  | "fcvt_s_wu", [ a ] -> rs (Int64.to_float (Bits.to_uint32 a))
  | "fcvt_s_l", [ a ] -> rs (Int64.to_float a)
  | "fcvt_s_lu", [ a ] -> rs (u64_to_float a)
  | "fcvt_d_w", [ a ] -> rd (Int64.to_float (sx32 a))
  | "fcvt_d_wu", [ a ] -> rd (Int64.to_float (Bits.to_uint32 a))
  | "fcvt_d_l", [ a ] -> rd (Int64.to_float a)
  | "fcvt_d_lu", [ a ] -> rd (u64_to_float a)
  | "fcvt_s_d", [ a ] -> rs (d a)
  | "fcvt_d_s", [ a ] -> rd (s a)
  | _ -> fail "unknown opaque function %s/%d" name (List.length args)

type env = (string * int64) list

let field_value (insn : Riscv.Insn.t) = function
  | Ir.F_rd -> insn.Riscv.Insn.rd
  | Ir.F_rs1 -> insn.Riscv.Insn.rs1
  | Ir.F_rs2 -> insn.Riscv.Insn.rs2
  | Ir.F_rs3 -> insn.Riscv.Insn.rs3

let rec eval_expr ~(insn : Riscv.Insn.t) ~pc ~(st : state) (env : env)
    (e : Ir.expr) : int64 =
  let recur = eval_expr ~insn ~pc ~st env in
  match e with
  | Ir.Const v -> v
  | Ir.ImmVal -> insn.Riscv.Insn.imm
  | Ir.CsrVal -> Int64.of_int insn.Riscv.Insn.csr
  | Ir.ReadPC -> pc
  | Ir.NextPC -> Int64.add pc (Int64.of_int insn.Riscv.Insn.len)
  | Ir.Var x -> (
      match List.assoc_opt x env with
      | Some v -> v
      | None -> fail "unbound variable %s" x)
  | Ir.ReadX f ->
      let r = field_value insn f in
      if r = 0 then 0L else st.get_x r
  | Ir.ReadF f -> st.get_f (field_value insn f)
  | Ir.Load (w, a) -> st.load w (recur a)
  | Ir.Binop (op, a, b) -> eval_binop op (recur a) (recur b)
  | Ir.Unop (op, a) -> eval_unop op (recur a)
  | Ir.SignExt (a, n) -> Bits.sign_extend64 (recur a) n
  | Ir.ZeroExt (a, n) -> Bits.extract64 (recur a) 0 n
  | Ir.Opaque (name, args) -> (
      let vargs = List.map recur args in
      match (name, vargs) with
      | "csr_read", [ c ] -> st.csr_read (Int64.to_int c)
      | "zimm", [] -> Int64.of_int insn.Riscv.Insn.rs1
      | "fp_flags", [] -> st.get_fcsr ()
      | "reservation_valid", [ a ] -> bool_to_v (st.reservation = Some a)
      | "clz64", [ a ] -> Riscv.Bitmanip.clz64 a
      | "ctz64", [ a ] -> Riscv.Bitmanip.ctz64 a
      | "cpop64", [ a ] -> Riscv.Bitmanip.cpop64 a
      | "clz32", [ a ] -> Riscv.Bitmanip.clz32 a
      | "ctz32", [ a ] -> Riscv.Bitmanip.ctz32 a
      | "cpop32", [ a ] -> Riscv.Bitmanip.cpop32 a
      | "rol64", [ a; b ] -> Riscv.Bitmanip.rol64 a b
      | "ror64", [ a; b ] -> Riscv.Bitmanip.ror64 a b
      | "rolw", [ a; b ] -> Riscv.Bitmanip.rolw a b
      | "rorw", [ a; b ] -> Riscv.Bitmanip.rorw a b
      | "rev8", [ a ] -> Riscv.Bitmanip.rev8 a
      | "orc_b", [ a ] -> Riscv.Bitmanip.orc_b a
      | _ -> eval_fp_opaque ~insn name vargs)

let rec eval_stmts ~insn ~pc ~st env (stmts : Ir.stmt list) : env * int64 option =
  match stmts with
  | [] -> (env, None)
  | s :: rest -> (
      match s with
      | Ir.SLet (x, e) ->
          let v = eval_expr ~insn ~pc ~st env e in
          eval_stmts ~insn ~pc ~st ((x, v) :: env) rest
      | Ir.SSetX (f, e) ->
          let r = field_value insn f in
          let v = eval_expr ~insn ~pc ~st env e in
          if r <> 0 then st.set_x r v;
          eval_stmts ~insn ~pc ~st env rest
      | Ir.SSetF (f, e) ->
          st.set_f (field_value insn f) (eval_expr ~insn ~pc ~st env e);
          eval_stmts ~insn ~pc ~st env rest
      | Ir.SSetPC e ->
          let target = eval_expr ~insn ~pc ~st env e in
          let env, later = eval_stmts ~insn ~pc ~st env rest in
          (env, Some (Option.value later ~default:target))
      | Ir.SSetFCSR e ->
          st.set_fcsr (eval_expr ~insn ~pc ~st env e);
          eval_stmts ~insn ~pc ~st env rest
      | Ir.SStore (w, a, v) ->
          st.store w
            (eval_expr ~insn ~pc ~st env a)
            (eval_expr ~insn ~pc ~st env v);
          eval_stmts ~insn ~pc ~st env rest
      | Ir.SIf (c, then_b, else_b) ->
          let branch =
            if Int64.equal (eval_expr ~insn ~pc ~st env c) 0L then else_b
            else then_b
          in
          let _, pc1 = eval_stmts ~insn ~pc ~st env branch in
          let env, pc2 = eval_stmts ~insn ~pc ~st env rest in
          (env, match pc2 with Some _ -> pc2 | None -> pc1)
      | Ir.SEffect (name, args) ->
          let vargs = List.map (eval_expr ~insn ~pc ~st env) args in
          (match (name, vargs) with
          | "csr_write", [ c; v ] -> st.csr_write (Int64.to_int c) v
          | "set_reservation", [ a ] -> st.reservation <- Some a
          | "clear_reservation", [] -> st.reservation <- None
          | "flush_fetch_buffer", [] -> ()
          | _ -> fail "unknown effect %s" name);
          eval_stmts ~insn ~pc ~st env rest)

(* Execute [sem] for the concrete [insn] at [pc].  Returns the next pc. *)
let exec (sem : Ir.sem) ~(insn : Riscv.Insn.t) ~(pc : int64) (st : state) :
    int64 =
  let _, pc' = eval_stmts ~insn ~pc ~st [] sem.Ir.stmts in
  Option.value pc' ~default:(Int64.add pc (Int64.of_int insn.Riscv.Insn.len))
