(* Lexer and recursive-descent parser for the mini-SAIL surface syntax. *)

open Ast

exception Syntax_error of string

type token =
  | TIdent of string
  | TInt of int64
  | TString of string (* only used inside trap(...) messages *)
  | TPunct of string (* ( ) { } , ; *)
  | TOp of string (* = == != <= >= < > + - * / % & | ^ ~ ! *)
  | TEOF

let fail fmt = Format.kasprintf (fun s -> raise (Syntax_error s)) fmt

let tokenize (src : string) : token list =
  let n = String.length src in
  let toks = ref [] in
  let push t = toks := t :: !toks in
  let i = ref 0 in
  let is_ident_char c =
    (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c = '_'
  in
  while !i < n do
    let c = src.[!i] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if c = '/' && !i + 1 < n && src.[!i + 1] = '/' then begin
      while !i < n && src.[!i] <> '\n' do incr i done
    end
    else if c = '"' then begin
      let start = !i + 1 in
      incr i;
      while !i < n && src.[!i] <> '"' do incr i done;
      if !i >= n then fail "unterminated string literal";
      push (TString (String.sub src start (!i - start)));
      incr i
    end
    else if (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' then begin
      let start = !i in
      while !i < n && is_ident_char src.[!i] do incr i done;
      push (TIdent (String.sub src start (!i - start)))
    end
    else if c >= '0' && c <= '9' then begin
      let start = !i in
      incr i;
      if !i < n && (src.[!i] = 'x' || src.[!i] = 'X') then begin
        incr i;
        while
          !i < n
          && (is_ident_char src.[!i])
        do incr i done
      end
      else while !i < n && src.[!i] >= '0' && src.[!i] <= '9' do incr i done;
      push (TInt (Int64.of_string (String.sub src start (!i - start))))
    end
    else begin
      let two =
        if !i + 1 < n then String.sub src !i 2 else ""
      in
      match two with
      | "==" | "!=" | "<=" | ">=" ->
          push (TOp two);
          i := !i + 2
      | _ -> (
          match c with
          | '(' | ')' | '{' | '}' | ',' | ';' ->
              push (TPunct (String.make 1 c));
              incr i
          | '=' | '<' | '>' | '+' | '-' | '*' | '/' | '%' | '&' | '|' | '^'
          | '~' | '!' ->
              push (TOp (String.make 1 c));
              incr i
          | _ -> fail "unexpected character %c at offset %d" c !i)
    end
  done;
  List.rev (TEOF :: !toks)

type ps = { mutable toks : token list }

let peek ps = match ps.toks with t :: _ -> t | [] -> TEOF
let advance ps = match ps.toks with _ :: r -> ps.toks <- r | [] -> ()

let eat_punct ps p =
  match peek ps with
  | TPunct q when q = p -> advance ps
  | t ->
      fail "expected %s, got %s" p
        (match t with
        | TIdent s -> s
        | TInt i -> Int64.to_string i
        | TString s -> "\"" ^ s ^ "\""
        | TPunct s | TOp s -> s
        | TEOF -> "<eof>")

let eat_op ps o =
  match peek ps with
  | TOp q when q = o -> advance ps
  | _ -> fail "expected operator %s" o

let eat_ident ps =
  match peek ps with
  | TIdent s ->
      advance ps;
      s
  | _ -> fail "expected identifier"

let eat_keyword ps kw =
  match peek ps with
  | TIdent s when s = kw -> advance ps
  | _ -> fail "expected keyword %s" kw

(* expression parsing by precedence climbing *)
let rec parse_expr ps = parse_or ps

and parse_or ps =
  let lhs = parse_xor ps in
  match peek ps with
  | TOp "|" ->
      advance ps;
      Binop (Or, lhs, parse_or ps)
  | _ -> lhs

and parse_xor ps =
  let lhs = parse_and ps in
  match peek ps with
  | TOp "^" ->
      advance ps;
      Binop (Xor, lhs, parse_xor ps)
  | _ -> lhs

and parse_and ps =
  let lhs = parse_cmp ps in
  match peek ps with
  | TOp "&" ->
      advance ps;
      Binop (And, lhs, parse_and ps)
  | _ -> lhs

and parse_cmp ps =
  let lhs = parse_addsub ps in
  match peek ps with
  | TOp "==" -> advance ps; Binop (Eq, lhs, parse_addsub ps)
  | TOp "!=" -> advance ps; Binop (Ne, lhs, parse_addsub ps)
  | TOp "<" -> advance ps; Binop (LtS, lhs, parse_addsub ps)
  | TOp "<=" -> advance ps; Binop (LeS, lhs, parse_addsub ps)
  | TOp ">" -> advance ps; Binop (GtS, lhs, parse_addsub ps)
  | TOp ">=" -> advance ps; Binop (GeS, lhs, parse_addsub ps)
  | _ -> lhs

and parse_addsub ps =
  let rec go lhs =
    match peek ps with
    | TOp "+" ->
        advance ps;
        go (Binop (Add, lhs, parse_muldiv ps))
    | TOp "-" ->
        advance ps;
        go (Binop (Sub, lhs, parse_muldiv ps))
    | _ -> lhs
  in
  go (parse_muldiv ps)

and parse_muldiv ps =
  let rec go lhs =
    match peek ps with
    | TOp "*" ->
        advance ps;
        go (Binop (Mul, lhs, parse_unary ps))
    | TOp "/" ->
        advance ps;
        go (Binop (DivS, lhs, parse_unary ps))
    | TOp "%" ->
        advance ps;
        go (Binop (RemS, lhs, parse_unary ps))
    | _ -> lhs
  in
  go (parse_unary ps)

and parse_unary ps =
  match peek ps with
  | TOp "-" ->
      advance ps;
      Unop (Neg, parse_unary ps)
  | TOp "~" ->
      advance ps;
      Unop (BitNot, parse_unary ps)
  | TOp "!" ->
      advance ps;
      Unop (BoolNot, parse_unary ps)
  | _ -> parse_atom ps

and parse_atom ps =
  match peek ps with
  | TInt v ->
      advance ps;
      Int v
  | TPunct "(" ->
      advance ps;
      let e = parse_expr ps in
      eat_punct ps ")";
      e
  | TIdent name -> (
      advance ps;
      match peek ps with
      | TPunct "(" ->
          advance ps;
          let args =
            if peek ps = TPunct ")" then []
            else
              let rec go acc =
                let e = parse_expr ps in
                match peek ps with
                | TPunct "," ->
                    advance ps;
                    go (e :: acc)
                | _ -> List.rev (e :: acc)
              in
              go []
          in
          eat_punct ps ")";
          if name = "X" then
            match args with
            | [ Ident f ] -> XReg f
            | _ -> fail "X() takes one operand-field argument"
          else if name = "F" then
            match args with
            | [ Ident f ] -> FReg f
            | _ -> fail "F() takes one operand-field argument"
          else Call (name, args)
      | _ -> Ident name)
  | TString _ -> fail "string literal outside trap()"
  | TOp o -> fail "unexpected operator %s in expression" o
  | TPunct p -> fail "unexpected %s in expression" p
  | TEOF -> fail "unexpected end of input"

let is_trap_call name =
  name = "trap" || name = "assert" || name = "internal_error"
  || (String.length name > 6 && String.sub name 0 6 = "check_")
  || (String.length name > 9 && String.sub name 0 9 = "validate_")

let rec parse_stmt ps : stmt =
  match peek ps with
  | TIdent "let" ->
      advance ps;
      let x = eat_ident ps in
      eat_op ps "=";
      let e = parse_expr ps in
      eat_punct ps ";";
      Let (x, e)
  | TIdent "if" ->
      advance ps;
      let cond = parse_expr ps in
      eat_keyword ps "then";
      let then_b = parse_block ps in
      let else_b =
        match peek ps with
        | TIdent "else" ->
            advance ps;
            parse_block ps
        | _ -> []
      in
      (match peek ps with TPunct ";" -> advance ps | _ -> ());
      If (cond, then_b, else_b)
  | TIdent "X" ->
      advance ps;
      eat_punct ps "(";
      let f = eat_ident ps in
      eat_punct ps ")";
      eat_op ps "=";
      let e = parse_expr ps in
      eat_punct ps ";";
      AssignX (f, e)
  | TIdent "F" ->
      advance ps;
      eat_punct ps "(";
      let f = eat_ident ps in
      eat_punct ps ")";
      eat_op ps "=";
      let e = parse_expr ps in
      eat_punct ps ";";
      AssignF (f, e)
  | TIdent "PC" ->
      advance ps;
      eat_op ps "=";
      let e = parse_expr ps in
      eat_punct ps ";";
      AssignPC e
  | TIdent "FCSR" ->
      advance ps;
      eat_op ps "=";
      let e = parse_expr ps in
      eat_punct ps ";";
      AssignFCSR e
  | TIdent "RETIRE_SUCCESS" ->
      advance ps;
      (match peek ps with TPunct ";" -> advance ps | _ -> ());
      Retire
  | TIdent "skip" ->
      advance ps;
      eat_punct ps ";";
      Skip
  | TIdent name when is_trap_call name -> (
      advance ps;
      (* swallow the argument list; arguments are error-reporting detail *)
      match peek ps with
      | TPunct "(" ->
          let depth = ref 0 in
          let rec skip () =
            match peek ps with
            | TPunct "(" ->
                incr depth;
                advance ps;
                skip ()
            | TPunct ")" ->
                decr depth;
                advance ps;
                if !depth > 0 then skip ()
            | TEOF -> fail "unterminated trap call"
            | _ ->
                advance ps;
                skip ()
          in
          skip ();
          eat_punct ps ";";
          Trap name
      | _ ->
          eat_punct ps ";";
          Trap name)
  | TIdent name -> (
      (* calls in statement position: mem_write_N(addr, v) or effects *)
      advance ps;
      eat_punct ps "(";
      let args =
        if peek ps = TPunct ")" then []
        else
          let rec go acc =
            let e = parse_expr ps in
            match peek ps with
            | TPunct "," ->
                advance ps;
                go (e :: acc)
            | _ -> List.rev (e :: acc)
          in
          go []
      in
      eat_punct ps ")";
      eat_punct ps ";";
      match (name, args) with
      | "mem_write_8", [ a; v ] -> MemWrite (8, a, v)
      | "mem_write_16", [ a; v ] -> MemWrite (16, a, v)
      | "mem_write_32", [ a; v ] -> MemWrite (32, a, v)
      | "mem_write_64", [ a; v ] -> MemWrite (64, a, v)
      | _ -> Effect (name, args))
  | t ->
      fail "unexpected token %s at statement start"
        (match t with
        | TInt i -> Int64.to_string i
        | TString s -> "\"" ^ s ^ "\""
        | TPunct s | TOp s -> s
        | TEOF -> "<eof>"
        | TIdent s -> s)

and parse_block ps : stmt list =
  eat_punct ps "{";
  let rec go acc =
    match peek ps with
    | TPunct "}" ->
        advance ps;
        List.rev acc
    | _ -> go (parse_stmt ps :: acc)
  in
  go []

let parse_clause ps : clause =
  eat_keyword ps "function";
  eat_keyword ps "clause";
  eat_keyword ps "execute";
  eat_punct ps "(";
  let name = eat_ident ps in
  let args =
    match peek ps with
    | TPunct "(" ->
        advance ps;
        if peek ps = TPunct ")" then begin
          advance ps;
          []
        end
        else begin
          let rec go acc =
            let a = eat_ident ps in
            match peek ps with
            | TPunct "," ->
                advance ps;
                go (a :: acc)
            | _ ->
                eat_punct ps ")";
                List.rev (a :: acc)
          in
          go []
        end
    | _ -> []
  in
  eat_punct ps ")";
  eat_op ps "=";
  let body = parse_block ps in
  { name; args; body }

let parse_spec (src : string) : spec =
  let ps = { toks = tokenize src } in
  let rec go acc =
    match peek ps with
    | TEOF -> List.rev acc
    | _ -> go (parse_clause ps :: acc)
  in
  go []
