(* The RV64GC instruction semantics in mini-SAIL surface syntax.

   Modelled on the official riscv-sail specification: one
   `function clause execute` per instruction, *including* the
   error-handling detail (alignment checks, jump-target validation,
   traps) that the real model carries.  The pipeline's simplification
   pass strips those; keeping them here exercises the paper's stated
   reason for the pipeline existing at all (§3.2.4).

   Conventions:
     X(f)/F(f)       integer / FP register named by operand field f
     imm, csr        instruction fields
     pc, next_pc     address of this instruction / of the next one
     mem_read_N      zero-extending N-bit load (N in 8/16/32/64)
     mem_write_N     N-bit store (value truncated to N bits)
     sign_extend(e,n) treat the low n bits of e as signed
     Anything else is an uninterpreted function evaluated by the
     simulator-agreement layer (Eval) and treated as opaque by
     DataflowAPI. *)

let rv64i = {|
function clause execute (LUI(rd, imm)) = { X(rd) = imm; RETIRE_SUCCESS }
function clause execute (AUIPC(rd, imm)) = { X(rd) = pc + imm; RETIRE_SUCCESS }

function clause execute (JAL(rd, imm)) = {
  let target = pc + imm;
  if check_misaligned(target, 2) then { trap("fetch-misaligned"); };
  X(rd) = next_pc;
  PC = target;
  RETIRE_SUCCESS
}

function clause execute (JALR(rd, rs1, imm)) = {
  let target = (X(rs1) + imm) & (~ 1);
  if check_misaligned(target, 2) then { trap("fetch-misaligned"); };
  X(rd) = next_pc;
  PC = target;
  RETIRE_SUCCESS
}

function clause execute (BEQ(rs1, rs2, imm)) = {
  if X(rs1) == X(rs2) then { PC = pc + imm; } else { PC = next_pc; };
  RETIRE_SUCCESS
}
function clause execute (BNE(rs1, rs2, imm)) = {
  if X(rs1) != X(rs2) then { PC = pc + imm; } else { PC = next_pc; };
  RETIRE_SUCCESS
}
function clause execute (BLT(rs1, rs2, imm)) = {
  if X(rs1) < X(rs2) then { PC = pc + imm; } else { PC = next_pc; };
  RETIRE_SUCCESS
}
function clause execute (BGE(rs1, rs2, imm)) = {
  if X(rs1) >= X(rs2) then { PC = pc + imm; } else { PC = next_pc; };
  RETIRE_SUCCESS
}
function clause execute (BLTU(rs1, rs2, imm)) = {
  if lt_u(X(rs1), X(rs2)) then { PC = pc + imm; } else { PC = next_pc; };
  RETIRE_SUCCESS
}
function clause execute (BGEU(rs1, rs2, imm)) = {
  if ge_u(X(rs1), X(rs2)) then { PC = pc + imm; } else { PC = next_pc; };
  RETIRE_SUCCESS
}

function clause execute (LB(rd, rs1, imm)) = {
  let addr = X(rs1) + imm;
  X(rd) = sign_extend(mem_read_8(addr), 8);
  RETIRE_SUCCESS
}
function clause execute (LBU(rd, rs1, imm)) = {
  let addr = X(rs1) + imm;
  X(rd) = mem_read_8(addr);
  RETIRE_SUCCESS
}
function clause execute (LH(rd, rs1, imm)) = {
  let addr = X(rs1) + imm;
  if check_alignment(addr, 2) then { trap("load-misaligned"); };
  X(rd) = sign_extend(mem_read_16(addr), 16);
  RETIRE_SUCCESS
}
function clause execute (LHU(rd, rs1, imm)) = {
  let addr = X(rs1) + imm;
  if check_alignment(addr, 2) then { trap("load-misaligned"); };
  X(rd) = mem_read_16(addr);
  RETIRE_SUCCESS
}
function clause execute (LW(rd, rs1, imm)) = {
  let addr = X(rs1) + imm;
  if check_alignment(addr, 4) then { trap("load-misaligned"); };
  X(rd) = sign_extend(mem_read_32(addr), 32);
  RETIRE_SUCCESS
}
function clause execute (LWU(rd, rs1, imm)) = {
  let addr = X(rs1) + imm;
  if check_alignment(addr, 4) then { trap("load-misaligned"); };
  X(rd) = mem_read_32(addr);
  RETIRE_SUCCESS
}
function clause execute (LD(rd, rs1, imm)) = {
  let addr = X(rs1) + imm;
  if check_alignment(addr, 8) then { trap("load-misaligned"); };
  X(rd) = mem_read_64(addr);
  RETIRE_SUCCESS
}

function clause execute (SB(rs1, rs2, imm)) = {
  mem_write_8(X(rs1) + imm, X(rs2));
  RETIRE_SUCCESS
}
function clause execute (SH(rs1, rs2, imm)) = {
  let addr = X(rs1) + imm;
  if check_alignment(addr, 2) then { trap("store-misaligned"); };
  mem_write_16(addr, X(rs2));
  RETIRE_SUCCESS
}
function clause execute (SW(rs1, rs2, imm)) = {
  let addr = X(rs1) + imm;
  if check_alignment(addr, 4) then { trap("store-misaligned"); };
  mem_write_32(addr, X(rs2));
  RETIRE_SUCCESS
}
function clause execute (SD(rs1, rs2, imm)) = {
  let addr = X(rs1) + imm;
  if check_alignment(addr, 8) then { trap("store-misaligned"); };
  mem_write_64(addr, X(rs2));
  RETIRE_SUCCESS
}

function clause execute (ADDI(rd, rs1, imm)) = { X(rd) = X(rs1) + imm; RETIRE_SUCCESS }
function clause execute (SLTI(rd, rs1, imm)) = {
  if X(rs1) < imm then { X(rd) = 1; } else { X(rd) = 0; };
  RETIRE_SUCCESS
}
function clause execute (SLTIU(rd, rs1, imm)) = {
  if lt_u(X(rs1), imm) then { X(rd) = 1; } else { X(rd) = 0; };
  RETIRE_SUCCESS
}
function clause execute (XORI(rd, rs1, imm)) = { X(rd) = X(rs1) ^ imm; RETIRE_SUCCESS }
function clause execute (ORI(rd, rs1, imm)) = { X(rd) = X(rs1) | imm; RETIRE_SUCCESS }
function clause execute (ANDI(rd, rs1, imm)) = { X(rd) = X(rs1) & imm; RETIRE_SUCCESS }
function clause execute (SLLI(rd, rs1, imm)) = { X(rd) = shift_left(X(rs1), imm); RETIRE_SUCCESS }
function clause execute (SRLI(rd, rs1, imm)) = { X(rd) = shift_right_logical(X(rs1), imm); RETIRE_SUCCESS }
function clause execute (SRAI(rd, rs1, imm)) = { X(rd) = shift_right_arith(X(rs1), imm); RETIRE_SUCCESS }

function clause execute (ADD(rd, rs1, rs2)) = { X(rd) = X(rs1) + X(rs2); RETIRE_SUCCESS }
function clause execute (SUB(rd, rs1, rs2)) = { X(rd) = X(rs1) - X(rs2); RETIRE_SUCCESS }
function clause execute (SLL(rd, rs1, rs2)) = { X(rd) = shift_left(X(rs1), X(rs2) & 63); RETIRE_SUCCESS }
function clause execute (SLT(rd, rs1, rs2)) = {
  if X(rs1) < X(rs2) then { X(rd) = 1; } else { X(rd) = 0; };
  RETIRE_SUCCESS
}
function clause execute (SLTU(rd, rs1, rs2)) = {
  if lt_u(X(rs1), X(rs2)) then { X(rd) = 1; } else { X(rd) = 0; };
  RETIRE_SUCCESS
}
function clause execute (XOR(rd, rs1, rs2)) = { X(rd) = X(rs1) ^ X(rs2); RETIRE_SUCCESS }
function clause execute (SRL(rd, rs1, rs2)) = { X(rd) = shift_right_logical(X(rs1), X(rs2) & 63); RETIRE_SUCCESS }
function clause execute (SRA(rd, rs1, rs2)) = { X(rd) = shift_right_arith(X(rs1), X(rs2) & 63); RETIRE_SUCCESS }
function clause execute (OR(rd, rs1, rs2)) = { X(rd) = X(rs1) | X(rs2); RETIRE_SUCCESS }
function clause execute (AND(rd, rs1, rs2)) = { X(rd) = X(rs1) & X(rs2); RETIRE_SUCCESS }

function clause execute (ADDIW(rd, rs1, imm)) = { X(rd) = sign_extend(X(rs1) + imm, 32); RETIRE_SUCCESS }
function clause execute (SLLIW(rd, rs1, imm)) = { X(rd) = sign_extend(shift_left(X(rs1), imm), 32); RETIRE_SUCCESS }
function clause execute (SRLIW(rd, rs1, imm)) = { X(rd) = sign_extend(shift_right_logical(X(rs1) & 0xFFFFFFFF, imm), 32); RETIRE_SUCCESS }
function clause execute (SRAIW(rd, rs1, imm)) = { X(rd) = sign_extend(shift_right_arith(sign_extend(X(rs1), 32), imm), 32); RETIRE_SUCCESS }
function clause execute (ADDW(rd, rs1, rs2)) = { X(rd) = sign_extend(X(rs1) + X(rs2), 32); RETIRE_SUCCESS }
function clause execute (SUBW(rd, rs1, rs2)) = { X(rd) = sign_extend(X(rs1) - X(rs2), 32); RETIRE_SUCCESS }
function clause execute (SLLW(rd, rs1, rs2)) = { X(rd) = sign_extend(shift_left(X(rs1), X(rs2) & 31), 32); RETIRE_SUCCESS }
function clause execute (SRLW(rd, rs1, rs2)) = { X(rd) = sign_extend(shift_right_logical(X(rs1) & 0xFFFFFFFF, X(rs2) & 31), 32); RETIRE_SUCCESS }
function clause execute (SRAW(rd, rs1, rs2)) = { X(rd) = sign_extend(shift_right_arith(sign_extend(X(rs1), 32), X(rs2) & 31), 32); RETIRE_SUCCESS }

function clause execute (FENCE(rd, rs1, imm)) = { RETIRE_SUCCESS }
function clause execute (ECALL()) = { trap("environment-call"); RETIRE_SUCCESS }
function clause execute (EBREAK()) = { trap("breakpoint"); RETIRE_SUCCESS }
function clause execute (FENCE_I()) = { flush_fetch_buffer(); RETIRE_SUCCESS }
|}

let zicsr = {|
function clause execute (CSRRW(rd, rs1, csr)) = {
  if check_csr_access(csr) then { trap("illegal-csr"); };
  let old = csr_read(csr);
  csr_write(csr, X(rs1));
  X(rd) = old;
  RETIRE_SUCCESS
}
function clause execute (CSRRS(rd, rs1, csr)) = {
  if check_csr_access(csr) then { trap("illegal-csr"); };
  let old = csr_read(csr);
  csr_write(csr, old | X(rs1));
  X(rd) = old;
  RETIRE_SUCCESS
}
function clause execute (CSRRC(rd, rs1, csr)) = {
  if check_csr_access(csr) then { trap("illegal-csr"); };
  let old = csr_read(csr);
  csr_write(csr, old & (~ X(rs1)));
  X(rd) = old;
  RETIRE_SUCCESS
}
function clause execute (CSRRWI(rd, csr)) = {
  let old = csr_read(csr);
  csr_write(csr, zimm());
  X(rd) = old;
  RETIRE_SUCCESS
}
function clause execute (CSRRSI(rd, csr)) = {
  let old = csr_read(csr);
  csr_write(csr, old | zimm());
  X(rd) = old;
  RETIRE_SUCCESS
}
function clause execute (CSRRCI(rd, csr)) = {
  let old = csr_read(csr);
  csr_write(csr, old & (~ zimm()));
  X(rd) = old;
  RETIRE_SUCCESS
}
|}

let rv64m = {|
function clause execute (MUL(rd, rs1, rs2)) = { X(rd) = X(rs1) * X(rs2); RETIRE_SUCCESS }
function clause execute (MULH(rd, rs1, rs2)) = { X(rd) = mulh(X(rs1), X(rs2)); RETIRE_SUCCESS }
function clause execute (MULHSU(rd, rs1, rs2)) = { X(rd) = mulhsu(X(rs1), X(rs2)); RETIRE_SUCCESS }
function clause execute (MULHU(rd, rs1, rs2)) = { X(rd) = mulhu(X(rs1), X(rs2)); RETIRE_SUCCESS }
function clause execute (DIV(rd, rs1, rs2)) = {
  if X(rs2) == 0 then { X(rd) = 0 - 1; } else {
    if (X(rs1) == min_int64()) & (X(rs2) == (0 - 1)) then { X(rd) = X(rs1); }
    else { X(rd) = X(rs1) / X(rs2); };
  };
  RETIRE_SUCCESS
}
function clause execute (DIVU(rd, rs1, rs2)) = {
  if X(rs2) == 0 then { X(rd) = 0 - 1; } else { X(rd) = div_u(X(rs1), X(rs2)); };
  RETIRE_SUCCESS
}
function clause execute (REM(rd, rs1, rs2)) = {
  if X(rs2) == 0 then { X(rd) = X(rs1); } else {
    if (X(rs1) == min_int64()) & (X(rs2) == (0 - 1)) then { X(rd) = 0; }
    else { X(rd) = X(rs1) % X(rs2); };
  };
  RETIRE_SUCCESS
}
function clause execute (REMU(rd, rs1, rs2)) = {
  if X(rs2) == 0 then { X(rd) = X(rs1); } else { X(rd) = rem_u(X(rs1), X(rs2)); };
  RETIRE_SUCCESS
}
function clause execute (MULW(rd, rs1, rs2)) = { X(rd) = sign_extend(X(rs1) * X(rs2), 32); RETIRE_SUCCESS }
function clause execute (DIVW(rd, rs1, rs2)) = {
  let a = sign_extend(X(rs1), 32);
  let b = sign_extend(X(rs2), 32);
  if b == 0 then { X(rd) = 0 - 1; } else {
    if (a == (0 - 2147483648)) & (b == (0 - 1)) then { X(rd) = a; }
    else { X(rd) = sign_extend(a / b, 32); };
  };
  RETIRE_SUCCESS
}
function clause execute (DIVUW(rd, rs1, rs2)) = {
  let a = X(rs1) & 0xFFFFFFFF;
  let b = X(rs2) & 0xFFFFFFFF;
  if b == 0 then { X(rd) = 0 - 1; } else { X(rd) = sign_extend(a / b, 32); };
  RETIRE_SUCCESS
}
function clause execute (REMW(rd, rs1, rs2)) = {
  let a = sign_extend(X(rs1), 32);
  let b = sign_extend(X(rs2), 32);
  if b == 0 then { X(rd) = a; } else {
    if (a == (0 - 2147483648)) & (b == (0 - 1)) then { X(rd) = 0; }
    else { X(rd) = sign_extend(a % b, 32); };
  };
  RETIRE_SUCCESS
}
function clause execute (REMUW(rd, rs1, rs2)) = {
  let a = X(rs1) & 0xFFFFFFFF;
  let b = X(rs2) & 0xFFFFFFFF;
  if b == 0 then { X(rd) = sign_extend(a, 32); } else { X(rd) = sign_extend(a % b, 32); };
  RETIRE_SUCCESS
}
|}

let rv64a = {|
function clause execute (LR_W(rd, rs1)) = {
  let addr = X(rs1);
  if check_alignment(addr, 4) then { trap("amo-misaligned"); };
  set_reservation(addr);
  X(rd) = sign_extend(mem_read_32(addr), 32);
  RETIRE_SUCCESS
}
function clause execute (LR_D(rd, rs1)) = {
  let addr = X(rs1);
  if check_alignment(addr, 8) then { trap("amo-misaligned"); };
  set_reservation(addr);
  X(rd) = mem_read_64(addr);
  RETIRE_SUCCESS
}
function clause execute (SC_W(rd, rs1, rs2)) = {
  let addr = X(rs1);
  if check_alignment(addr, 4) then { trap("amo-misaligned"); };
  if reservation_valid(addr) then {
    mem_write_32(addr, X(rs2));
    clear_reservation();
    X(rd) = 0;
  } else { X(rd) = 1; };
  RETIRE_SUCCESS
}
function clause execute (SC_D(rd, rs1, rs2)) = {
  let addr = X(rs1);
  if check_alignment(addr, 8) then { trap("amo-misaligned"); };
  if reservation_valid(addr) then {
    mem_write_64(addr, X(rs2));
    clear_reservation();
    X(rd) = 0;
  } else { X(rd) = 1; };
  RETIRE_SUCCESS
}
function clause execute (AMOSWAP_W(rd, rs1, rs2)) = {
  let addr = X(rs1);
  if check_alignment(addr, 4) then { trap("amo-misaligned"); };
  let old = sign_extend(mem_read_32(addr), 32);
  mem_write_32(addr, X(rs2));
  X(rd) = old;
  RETIRE_SUCCESS
}
function clause execute (AMOADD_W(rd, rs1, rs2)) = {
  let addr = X(rs1);
  if check_alignment(addr, 4) then { trap("amo-misaligned"); };
  let old = sign_extend(mem_read_32(addr), 32);
  mem_write_32(addr, old + X(rs2));
  X(rd) = old;
  RETIRE_SUCCESS
}
function clause execute (AMOXOR_W(rd, rs1, rs2)) = {
  let addr = X(rs1);
  let old = sign_extend(mem_read_32(addr), 32);
  mem_write_32(addr, old ^ X(rs2));
  X(rd) = old;
  RETIRE_SUCCESS
}
function clause execute (AMOAND_W(rd, rs1, rs2)) = {
  let addr = X(rs1);
  let old = sign_extend(mem_read_32(addr), 32);
  mem_write_32(addr, old & X(rs2));
  X(rd) = old;
  RETIRE_SUCCESS
}
function clause execute (AMOOR_W(rd, rs1, rs2)) = {
  let addr = X(rs1);
  let old = sign_extend(mem_read_32(addr), 32);
  mem_write_32(addr, old | X(rs2));
  X(rd) = old;
  RETIRE_SUCCESS
}
function clause execute (AMOMIN_W(rd, rs1, rs2)) = {
  let addr = X(rs1);
  let old = sign_extend(mem_read_32(addr), 32);
  let v = sign_extend(X(rs2), 32);
  if old < v then { mem_write_32(addr, old); } else { mem_write_32(addr, v); };
  X(rd) = old;
  RETIRE_SUCCESS
}
function clause execute (AMOMAX_W(rd, rs1, rs2)) = {
  let addr = X(rs1);
  let old = sign_extend(mem_read_32(addr), 32);
  let v = sign_extend(X(rs2), 32);
  if old > v then { mem_write_32(addr, old); } else { mem_write_32(addr, v); };
  X(rd) = old;
  RETIRE_SUCCESS
}
function clause execute (AMOMINU_W(rd, rs1, rs2)) = {
  let addr = X(rs1);
  let old = sign_extend(mem_read_32(addr), 32);
  let v = sign_extend(X(rs2), 32);
  if lt_u(old, v) then { mem_write_32(addr, old); } else { mem_write_32(addr, v); };
  X(rd) = old;
  RETIRE_SUCCESS
}
function clause execute (AMOMAXU_W(rd, rs1, rs2)) = {
  let addr = X(rs1);
  let old = sign_extend(mem_read_32(addr), 32);
  let v = sign_extend(X(rs2), 32);
  if lt_u(old, v) then { mem_write_32(addr, v); } else { mem_write_32(addr, old); };
  X(rd) = old;
  RETIRE_SUCCESS
}
function clause execute (AMOSWAP_D(rd, rs1, rs2)) = {
  let addr = X(rs1);
  if check_alignment(addr, 8) then { trap("amo-misaligned"); };
  let old = mem_read_64(addr);
  mem_write_64(addr, X(rs2));
  X(rd) = old;
  RETIRE_SUCCESS
}
function clause execute (AMOADD_D(rd, rs1, rs2)) = {
  let addr = X(rs1);
  if check_alignment(addr, 8) then { trap("amo-misaligned"); };
  let old = mem_read_64(addr);
  mem_write_64(addr, old + X(rs2));
  X(rd) = old;
  RETIRE_SUCCESS
}
function clause execute (AMOXOR_D(rd, rs1, rs2)) = {
  let addr = X(rs1);
  let old = mem_read_64(addr);
  mem_write_64(addr, old ^ X(rs2));
  X(rd) = old;
  RETIRE_SUCCESS
}
function clause execute (AMOAND_D(rd, rs1, rs2)) = {
  let addr = X(rs1);
  let old = mem_read_64(addr);
  mem_write_64(addr, old & X(rs2));
  X(rd) = old;
  RETIRE_SUCCESS
}
function clause execute (AMOOR_D(rd, rs1, rs2)) = {
  let addr = X(rs1);
  let old = mem_read_64(addr);
  mem_write_64(addr, old | X(rs2));
  X(rd) = old;
  RETIRE_SUCCESS
}
function clause execute (AMOMIN_D(rd, rs1, rs2)) = {
  let addr = X(rs1);
  let old = mem_read_64(addr);
  if old < X(rs2) then { mem_write_64(addr, old); } else { mem_write_64(addr, X(rs2)); };
  X(rd) = old;
  RETIRE_SUCCESS
}
function clause execute (AMOMAX_D(rd, rs1, rs2)) = {
  let addr = X(rs1);
  let old = mem_read_64(addr);
  if old > X(rs2) then { mem_write_64(addr, old); } else { mem_write_64(addr, X(rs2)); };
  X(rd) = old;
  RETIRE_SUCCESS
}
function clause execute (AMOMINU_D(rd, rs1, rs2)) = {
  let addr = X(rs1);
  let old = mem_read_64(addr);
  if lt_u(old, X(rs2)) then { mem_write_64(addr, old); } else { mem_write_64(addr, X(rs2)); };
  X(rd) = old;
  RETIRE_SUCCESS
}
function clause execute (AMOMAXU_D(rd, rs1, rs2)) = {
  let addr = X(rs1);
  let old = mem_read_64(addr);
  if lt_u(old, X(rs2)) then { mem_write_64(addr, X(rs2)); } else { mem_write_64(addr, old); };
  X(rd) = old;
  RETIRE_SUCCESS
}
|}

let rv64fd = {|
function clause execute (FLW(rd, rs1, imm)) = {
  let addr = X(rs1) + imm;
  if check_alignment(addr, 4) then { trap("load-misaligned"); };
  F(rd) = nan_box_32(mem_read_32(addr));
  RETIRE_SUCCESS
}
function clause execute (FSW(rs1, rs2, imm)) = {
  let addr = X(rs1) + imm;
  if check_alignment(addr, 4) then { trap("store-misaligned"); };
  mem_write_32(addr, unbox_32(F(rs2)));
  RETIRE_SUCCESS
}
function clause execute (FLD(rd, rs1, imm)) = {
  let addr = X(rs1) + imm;
  if check_alignment(addr, 8) then { trap("load-misaligned"); };
  F(rd) = mem_read_64(addr);
  RETIRE_SUCCESS
}
function clause execute (FSD(rs1, rs2, imm)) = {
  let addr = X(rs1) + imm;
  if check_alignment(addr, 8) then { trap("store-misaligned"); };
  mem_write_64(addr, F(rs2));
  RETIRE_SUCCESS
}

function clause execute (FADD_S(rd, rs1, rs2)) = { F(rd) = fadd_s(F(rs1), F(rs2)); FCSR = fp_flags(); RETIRE_SUCCESS }
function clause execute (FSUB_S(rd, rs1, rs2)) = { F(rd) = fsub_s(F(rs1), F(rs2)); FCSR = fp_flags(); RETIRE_SUCCESS }
function clause execute (FMUL_S(rd, rs1, rs2)) = { F(rd) = fmul_s(F(rs1), F(rs2)); FCSR = fp_flags(); RETIRE_SUCCESS }
function clause execute (FDIV_S(rd, rs1, rs2)) = { F(rd) = fdiv_s(F(rs1), F(rs2)); FCSR = fp_flags(); RETIRE_SUCCESS }
function clause execute (FSQRT_S(rd, rs1)) = { F(rd) = fsqrt_s(F(rs1)); FCSR = fp_flags(); RETIRE_SUCCESS }
function clause execute (FMADD_S(rd, rs1, rs2, rs3)) = { F(rd) = fmadd_s(F(rs1), F(rs2), F(rs3)); FCSR = fp_flags(); RETIRE_SUCCESS }
function clause execute (FMSUB_S(rd, rs1, rs2, rs3)) = { F(rd) = fmsub_s(F(rs1), F(rs2), F(rs3)); FCSR = fp_flags(); RETIRE_SUCCESS }
function clause execute (FNMSUB_S(rd, rs1, rs2, rs3)) = { F(rd) = fnmsub_s(F(rs1), F(rs2), F(rs3)); FCSR = fp_flags(); RETIRE_SUCCESS }
function clause execute (FNMADD_S(rd, rs1, rs2, rs3)) = { F(rd) = fnmadd_s(F(rs1), F(rs2), F(rs3)); FCSR = fp_flags(); RETIRE_SUCCESS }

function clause execute (FADD_D(rd, rs1, rs2)) = { F(rd) = fadd_d(F(rs1), F(rs2)); FCSR = fp_flags(); RETIRE_SUCCESS }
function clause execute (FSUB_D(rd, rs1, rs2)) = { F(rd) = fsub_d(F(rs1), F(rs2)); FCSR = fp_flags(); RETIRE_SUCCESS }
function clause execute (FMUL_D(rd, rs1, rs2)) = { F(rd) = fmul_d(F(rs1), F(rs2)); FCSR = fp_flags(); RETIRE_SUCCESS }
function clause execute (FDIV_D(rd, rs1, rs2)) = { F(rd) = fdiv_d(F(rs1), F(rs2)); FCSR = fp_flags(); RETIRE_SUCCESS }
function clause execute (FSQRT_D(rd, rs1)) = { F(rd) = fsqrt_d(F(rs1)); FCSR = fp_flags(); RETIRE_SUCCESS }
function clause execute (FMADD_D(rd, rs1, rs2, rs3)) = { F(rd) = fmadd_d(F(rs1), F(rs2), F(rs3)); FCSR = fp_flags(); RETIRE_SUCCESS }
function clause execute (FMSUB_D(rd, rs1, rs2, rs3)) = { F(rd) = fmsub_d(F(rs1), F(rs2), F(rs3)); FCSR = fp_flags(); RETIRE_SUCCESS }
function clause execute (FNMSUB_D(rd, rs1, rs2, rs3)) = { F(rd) = fnmsub_d(F(rs1), F(rs2), F(rs3)); FCSR = fp_flags(); RETIRE_SUCCESS }
function clause execute (FNMADD_D(rd, rs1, rs2, rs3)) = { F(rd) = fnmadd_d(F(rs1), F(rs2), F(rs3)); FCSR = fp_flags(); RETIRE_SUCCESS }

function clause execute (FSGNJ_S(rd, rs1, rs2)) = {
  F(rd) = nan_box_32((unbox_32(F(rs1)) & 0x7FFFFFFF) | (unbox_32(F(rs2)) & 0x80000000));
  RETIRE_SUCCESS
}
function clause execute (FSGNJN_S(rd, rs1, rs2)) = {
  F(rd) = nan_box_32((unbox_32(F(rs1)) & 0x7FFFFFFF) | ((~ unbox_32(F(rs2))) & 0x80000000));
  RETIRE_SUCCESS
}
function clause execute (FSGNJX_S(rd, rs1, rs2)) = {
  F(rd) = nan_box_32(unbox_32(F(rs1)) ^ (unbox_32(F(rs2)) & 0x80000000));
  RETIRE_SUCCESS
}
function clause execute (FSGNJ_D(rd, rs1, rs2)) = {
  F(rd) = (F(rs1) & 0x7FFFFFFFFFFFFFFF) | (F(rs2) & min_int64());
  RETIRE_SUCCESS
}
function clause execute (FSGNJN_D(rd, rs1, rs2)) = {
  F(rd) = (F(rs1) & 0x7FFFFFFFFFFFFFFF) | ((~ F(rs2)) & min_int64());
  RETIRE_SUCCESS
}
function clause execute (FSGNJX_D(rd, rs1, rs2)) = {
  F(rd) = F(rs1) ^ (F(rs2) & min_int64());
  RETIRE_SUCCESS
}

function clause execute (FMIN_S(rd, rs1, rs2)) = { F(rd) = fmin_s(F(rs1), F(rs2)); FCSR = fp_flags(); RETIRE_SUCCESS }
function clause execute (FMAX_S(rd, rs1, rs2)) = { F(rd) = fmax_s(F(rs1), F(rs2)); FCSR = fp_flags(); RETIRE_SUCCESS }
function clause execute (FMIN_D(rd, rs1, rs2)) = { F(rd) = fmin_d(F(rs1), F(rs2)); FCSR = fp_flags(); RETIRE_SUCCESS }
function clause execute (FMAX_D(rd, rs1, rs2)) = { F(rd) = fmax_d(F(rs1), F(rs2)); FCSR = fp_flags(); RETIRE_SUCCESS }

function clause execute (FEQ_S(rd, rs1, rs2)) = { X(rd) = feq_s(F(rs1), F(rs2)); FCSR = fp_flags(); RETIRE_SUCCESS }
function clause execute (FLT_S(rd, rs1, rs2)) = { X(rd) = flt_s(F(rs1), F(rs2)); FCSR = fp_flags(); RETIRE_SUCCESS }
function clause execute (FLE_S(rd, rs1, rs2)) = { X(rd) = fle_s(F(rs1), F(rs2)); FCSR = fp_flags(); RETIRE_SUCCESS }
function clause execute (FEQ_D(rd, rs1, rs2)) = { X(rd) = feq_d(F(rs1), F(rs2)); FCSR = fp_flags(); RETIRE_SUCCESS }
function clause execute (FLT_D(rd, rs1, rs2)) = { X(rd) = flt_d(F(rs1), F(rs2)); FCSR = fp_flags(); RETIRE_SUCCESS }
function clause execute (FLE_D(rd, rs1, rs2)) = { X(rd) = fle_d(F(rs1), F(rs2)); FCSR = fp_flags(); RETIRE_SUCCESS }
function clause execute (FCLASS_S(rd, rs1)) = { X(rd) = fclass_s(F(rs1)); RETIRE_SUCCESS }
function clause execute (FCLASS_D(rd, rs1)) = { X(rd) = fclass_d(F(rs1)); RETIRE_SUCCESS }

function clause execute (FCVT_W_S(rd, rs1)) = { X(rd) = fcvt_w_s(F(rs1)); FCSR = fp_flags(); RETIRE_SUCCESS }
function clause execute (FCVT_WU_S(rd, rs1)) = { X(rd) = fcvt_wu_s(F(rs1)); FCSR = fp_flags(); RETIRE_SUCCESS }
function clause execute (FCVT_L_S(rd, rs1)) = { X(rd) = fcvt_l_s(F(rs1)); FCSR = fp_flags(); RETIRE_SUCCESS }
function clause execute (FCVT_LU_S(rd, rs1)) = { X(rd) = fcvt_lu_s(F(rs1)); FCSR = fp_flags(); RETIRE_SUCCESS }
function clause execute (FCVT_S_W(rd, rs1)) = { F(rd) = fcvt_s_w(X(rs1)); FCSR = fp_flags(); RETIRE_SUCCESS }
function clause execute (FCVT_S_WU(rd, rs1)) = { F(rd) = fcvt_s_wu(X(rs1)); FCSR = fp_flags(); RETIRE_SUCCESS }
function clause execute (FCVT_S_L(rd, rs1)) = { F(rd) = fcvt_s_l(X(rs1)); FCSR = fp_flags(); RETIRE_SUCCESS }
function clause execute (FCVT_S_LU(rd, rs1)) = { F(rd) = fcvt_s_lu(X(rs1)); FCSR = fp_flags(); RETIRE_SUCCESS }
function clause execute (FCVT_W_D(rd, rs1)) = { X(rd) = fcvt_w_d(F(rs1)); FCSR = fp_flags(); RETIRE_SUCCESS }
function clause execute (FCVT_WU_D(rd, rs1)) = { X(rd) = fcvt_wu_d(F(rs1)); FCSR = fp_flags(); RETIRE_SUCCESS }
function clause execute (FCVT_L_D(rd, rs1)) = { X(rd) = fcvt_l_d(F(rs1)); FCSR = fp_flags(); RETIRE_SUCCESS }
function clause execute (FCVT_LU_D(rd, rs1)) = { X(rd) = fcvt_lu_d(F(rs1)); FCSR = fp_flags(); RETIRE_SUCCESS }
function clause execute (FCVT_D_W(rd, rs1)) = { F(rd) = fcvt_d_w(X(rs1)); FCSR = fp_flags(); RETIRE_SUCCESS }
function clause execute (FCVT_D_WU(rd, rs1)) = { F(rd) = fcvt_d_wu(X(rs1)); FCSR = fp_flags(); RETIRE_SUCCESS }
function clause execute (FCVT_D_L(rd, rs1)) = { F(rd) = fcvt_d_l(X(rs1)); FCSR = fp_flags(); RETIRE_SUCCESS }
function clause execute (FCVT_D_LU(rd, rs1)) = { F(rd) = fcvt_d_lu(X(rs1)); FCSR = fp_flags(); RETIRE_SUCCESS }
function clause execute (FCVT_S_D(rd, rs1)) = { F(rd) = fcvt_s_d(F(rs1)); FCSR = fp_flags(); RETIRE_SUCCESS }
function clause execute (FCVT_D_S(rd, rs1)) = { F(rd) = fcvt_d_s(F(rs1)); FCSR = fp_flags(); RETIRE_SUCCESS }

function clause execute (FMV_X_W(rd, rs1)) = { X(rd) = sign_extend(unbox_32(F(rs1)), 32); RETIRE_SUCCESS }
function clause execute (FMV_W_X(rd, rs1)) = { F(rd) = nan_box_32(X(rs1) & 0xFFFFFFFF); RETIRE_SUCCESS }
function clause execute (FMV_X_D(rd, rs1)) = { X(rd) = F(rs1); RETIRE_SUCCESS }
function clause execute (FMV_D_X(rd, rs1)) = { F(rd) = X(rs1); RETIRE_SUCCESS }
|}


let zba_zbb = {|
function clause execute (SH1ADD(rd, rs1, rs2)) = { X(rd) = X(rs2) + shift_left(X(rs1), 1); RETIRE_SUCCESS }
function clause execute (SH2ADD(rd, rs1, rs2)) = { X(rd) = X(rs2) + shift_left(X(rs1), 2); RETIRE_SUCCESS }
function clause execute (SH3ADD(rd, rs1, rs2)) = { X(rd) = X(rs2) + shift_left(X(rs1), 3); RETIRE_SUCCESS }
function clause execute (ADD_UW(rd, rs1, rs2)) = { X(rd) = X(rs2) + (X(rs1) & 0xFFFFFFFF); RETIRE_SUCCESS }
function clause execute (SH1ADD_UW(rd, rs1, rs2)) = { X(rd) = X(rs2) + shift_left(X(rs1) & 0xFFFFFFFF, 1); RETIRE_SUCCESS }
function clause execute (SH2ADD_UW(rd, rs1, rs2)) = { X(rd) = X(rs2) + shift_left(X(rs1) & 0xFFFFFFFF, 2); RETIRE_SUCCESS }
function clause execute (SH3ADD_UW(rd, rs1, rs2)) = { X(rd) = X(rs2) + shift_left(X(rs1) & 0xFFFFFFFF, 3); RETIRE_SUCCESS }
function clause execute (SLLI_UW(rd, rs1, imm)) = { X(rd) = shift_left(X(rs1) & 0xFFFFFFFF, imm); RETIRE_SUCCESS }

function clause execute (ANDN(rd, rs1, rs2)) = { X(rd) = X(rs1) & (~ X(rs2)); RETIRE_SUCCESS }
function clause execute (ORN(rd, rs1, rs2)) = { X(rd) = X(rs1) | (~ X(rs2)); RETIRE_SUCCESS }
function clause execute (XNOR(rd, rs1, rs2)) = { X(rd) = ~ (X(rs1) ^ X(rs2)); RETIRE_SUCCESS }

function clause execute (CLZ(rd, rs1)) = { X(rd) = clz64(X(rs1)); RETIRE_SUCCESS }
function clause execute (CTZ(rd, rs1)) = { X(rd) = ctz64(X(rs1)); RETIRE_SUCCESS }
function clause execute (CPOP(rd, rs1)) = { X(rd) = cpop64(X(rs1)); RETIRE_SUCCESS }
function clause execute (CLZW(rd, rs1)) = { X(rd) = clz32(X(rs1)); RETIRE_SUCCESS }
function clause execute (CTZW(rd, rs1)) = { X(rd) = ctz32(X(rs1)); RETIRE_SUCCESS }
function clause execute (CPOPW(rd, rs1)) = { X(rd) = cpop32(X(rs1)); RETIRE_SUCCESS }

function clause execute (MAX(rd, rs1, rs2)) = {
  if X(rs1) < X(rs2) then { X(rd) = X(rs2); } else { X(rd) = X(rs1); };
  RETIRE_SUCCESS
}
function clause execute (MAXU(rd, rs1, rs2)) = {
  if lt_u(X(rs1), X(rs2)) then { X(rd) = X(rs2); } else { X(rd) = X(rs1); };
  RETIRE_SUCCESS
}
function clause execute (MIN(rd, rs1, rs2)) = {
  if X(rs1) < X(rs2) then { X(rd) = X(rs1); } else { X(rd) = X(rs2); };
  RETIRE_SUCCESS
}
function clause execute (MINU(rd, rs1, rs2)) = {
  if lt_u(X(rs1), X(rs2)) then { X(rd) = X(rs1); } else { X(rd) = X(rs2); };
  RETIRE_SUCCESS
}

function clause execute (SEXT_B(rd, rs1)) = { X(rd) = sign_extend(X(rs1), 8); RETIRE_SUCCESS }
function clause execute (SEXT_H(rd, rs1)) = { X(rd) = sign_extend(X(rs1), 16); RETIRE_SUCCESS }
function clause execute (ZEXT_H(rd, rs1)) = { X(rd) = X(rs1) & 0xFFFF; RETIRE_SUCCESS }

function clause execute (ROL(rd, rs1, rs2)) = { X(rd) = rol64(X(rs1), X(rs2)); RETIRE_SUCCESS }
function clause execute (ROR(rd, rs1, rs2)) = { X(rd) = ror64(X(rs1), X(rs2)); RETIRE_SUCCESS }
function clause execute (RORI(rd, rs1, imm)) = { X(rd) = ror64(X(rs1), imm); RETIRE_SUCCESS }
function clause execute (ROLW(rd, rs1, rs2)) = { X(rd) = rolw(X(rs1), X(rs2)); RETIRE_SUCCESS }
function clause execute (RORW(rd, rs1, rs2)) = { X(rd) = rorw(X(rs1), X(rs2)); RETIRE_SUCCESS }
function clause execute (RORIW(rd, rs1, imm)) = { X(rd) = rorw(X(rs1), imm); RETIRE_SUCCESS }
function clause execute (REV8(rd, rs1)) = { X(rd) = rev8(X(rs1)); RETIRE_SUCCESS }
function clause execute (ORC_B(rd, rs1)) = { X(rd) = orc_b(X(rs1)); RETIRE_SUCCESS }
|}

(* The complete specification text. *)
let text = String.concat "\n" [ rv64i; zicsr; rv64m; rv64a; rv64fd; zba_zbb ]
