(** The SAIL semantics pipeline facade (paper §3.2.4).

    Stage for stage:
    {v
    mini-SAIL text --parse--> AST --simplify--> AST --lower--> IR
                   --to JSON--> JSON IR --from JSON--> semantic records
    v}

    The table served to DataflowAPI is reconstructed {e from the JSON},
    so the JSON IR provably carries the complete semantics — it is the
    artifact the paper's stage-2 (C++ class generator) consumes.
    Re-running {!pipeline_of_text} after extending [Spec.text]
    regenerates everything: the paper's maintenance story for new RISC-V
    extensions (demonstrated here by Zba/Zbb). *)

type t = {
  sems : (Riscv.Op.t, Ir.sem) Hashtbl.t;
  json : Json.t;  (** the intermediate JSON document *)
  removed_error_handling : int;
      (** trap/alignment-check statements stripped by simplification *)
}

(** Raised when a clause names an opcode absent from the decoder table. *)
exception Unknown_clause of string

(** Run the full pipeline on a specification text. *)
val pipeline_of_text : string -> t

(** Semantics of an opcode, from the default RV64GC+Zba+Zbb spec
    ([Spec.text]); [None] only for opcodes without clauses. *)
val sem_of_op : Riscv.Op.t -> Ir.sem option

(** Register/memory effect summary of an opcode's semantics. *)
val summary_of_op : Riscv.Op.t -> Ir.summary option

(** The default pipeline's JSON document (dumped by bin/sail_pipeline). *)
val json_ir : unit -> Json.t

val removed_error_handling : unit -> int

(**/**)

val op_of_clause_name : string -> Riscv.Op.t
