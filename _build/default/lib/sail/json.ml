(* A minimal JSON implementation used as the pipeline's intermediate
   representation (paper §3.2.4: "a simplified JSON representation of the
   instruction semantics").  No external dependency is available in the
   sealed container, so this is self-contained: values, a printer and a
   recursive-descent parser sufficient for round-tripping our own
   output. *)

type t =
  | Null
  | Bool of bool
  | Int of int64
  | String of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

let rec pp fmt = function
  | Null -> Format.pp_print_string fmt "null"
  | Bool b -> Format.pp_print_bool fmt b
  | Int i -> Format.fprintf fmt "%Ld" i
  | String s -> pp_string fmt s
  | List xs ->
      Format.fprintf fmt "[@[<hv>%a@]]"
        (Format.pp_print_list ~pp_sep:(fun f () -> Format.fprintf f ",@ ") pp)
        xs
  | Obj kvs ->
      let pp_kv fmt (k, v) = Format.fprintf fmt "%a:@ %a" pp_string k pp v in
      Format.fprintf fmt "{@[<hv>%a@]}"
        (Format.pp_print_list ~pp_sep:(fun f () -> Format.fprintf f ",@ ") pp_kv)
        kvs

and pp_string fmt s =
  Format.pp_print_char fmt '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Format.pp_print_string fmt "\\\""
      | '\\' -> Format.pp_print_string fmt "\\\\"
      | '\n' -> Format.pp_print_string fmt "\\n"
      | '\t' -> Format.pp_print_string fmt "\\t"
      | '\r' -> Format.pp_print_string fmt "\\r"
      | c when Char.code c < 0x20 ->
          Format.fprintf fmt "\\u%04x" (Char.code c)
      | c -> Format.pp_print_char fmt c)
    s;
  Format.pp_print_char fmt '"'

let to_string t = Format.asprintf "%a" pp t

(* --- parser -------------------------------------------------------------- *)

type state = { src : string; mutable pos : int }

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None
let advance st = st.pos <- st.pos + 1

let rec skip_ws st =
  match peek st with
  | Some (' ' | '\t' | '\n' | '\r') ->
      advance st;
      skip_ws st
  | _ -> ()

let fail_at st msg =
  raise (Parse_error (Printf.sprintf "%s at offset %d" msg st.pos))

let expect st c =
  skip_ws st;
  match peek st with
  | Some c' when c' = c -> advance st
  | _ -> fail_at st (Printf.sprintf "expected %c" c)

let parse_string_lit st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> fail_at st "unterminated string"
    | Some '"' -> advance st
    | Some '\\' -> (
        advance st;
        match peek st with
        | Some 'n' -> advance st; Buffer.add_char buf '\n'; go ()
        | Some 't' -> advance st; Buffer.add_char buf '\t'; go ()
        | Some 'r' -> advance st; Buffer.add_char buf '\r'; go ()
        | Some 'u' ->
            advance st;
            let hex = String.sub st.src st.pos 4 in
            st.pos <- st.pos + 4;
            Buffer.add_char buf (Char.chr (int_of_string ("0x" ^ hex) land 0xFF));
            go ()
        | Some c -> advance st; Buffer.add_char buf c; go ()
        | None -> fail_at st "bad escape")
    | Some c ->
        advance st;
        Buffer.add_char buf c;
        go ()
  in
  go ();
  Buffer.contents buf

let rec parse_value st =
  skip_ws st;
  match peek st with
  | Some '{' ->
      advance st;
      skip_ws st;
      if peek st = Some '}' then begin advance st; Obj [] end
      else begin
        let rec members acc =
          skip_ws st;
          let k = parse_string_lit st in
          expect st ':';
          let v = parse_value st in
          skip_ws st;
          match peek st with
          | Some ',' -> advance st; members ((k, v) :: acc)
          | Some '}' -> advance st; Obj (List.rev ((k, v) :: acc))
          | _ -> fail_at st "expected , or }"
        in
        members []
      end
  | Some '[' ->
      advance st;
      skip_ws st;
      if peek st = Some ']' then begin advance st; List [] end
      else begin
        let rec elements acc =
          let v = parse_value st in
          skip_ws st;
          match peek st with
          | Some ',' -> advance st; elements (v :: acc)
          | Some ']' -> advance st; List (List.rev (v :: acc))
          | _ -> fail_at st "expected , or ]"
        in
        elements []
      end
  | Some '"' -> String (parse_string_lit st)
  | Some ('-' | '0' .. '9') ->
      let start = st.pos in
      if peek st = Some '-' then advance st;
      let rec digits () =
        match peek st with
        | Some '0' .. '9' -> advance st; digits ()
        | _ -> ()
      in
      digits ();
      Int (Int64.of_string (String.sub st.src start (st.pos - start)))
  | Some 't' ->
      st.pos <- st.pos + 4;
      Bool true
  | Some 'f' ->
      st.pos <- st.pos + 5;
      Bool false
  | Some 'n' ->
      st.pos <- st.pos + 4;
      Null
  | _ -> fail_at st "unexpected character"

let of_string s =
  let st = { src = s; pos = 0 } in
  let v = parse_value st in
  skip_ws st;
  if st.pos <> String.length s then fail_at st "trailing garbage";
  v

(* accessors *)
let member k = function
  | Obj kvs -> ( try List.assoc k kvs with Not_found -> Null)
  | _ -> Null

let to_list = function List l -> l | _ -> raise (Parse_error "expected list")
let to_int64 = function Int i -> i | _ -> raise (Parse_error "expected int")
let to_str = function String s -> s | _ -> raise (Parse_error "expected string")
