(* The pipeline facade, mirroring the paper's §3.2.4 stages:

     SAIL text --parse--> AST --simplify--> AST --lower--> IR
              --to JSON--> JSON IR --from JSON--> semantic records

   The JSON round trip is not vestigial: the table served to the rest of
   the system is the one *reconstructed from JSON*, so the JSON IR is
   guaranteed to carry the complete semantics (the paper's stage-2
   consumer reads exactly this representation).  Re-running [pipeline]
   after extending [Spec.text] regenerates everything — the paper's
   stated maintenance story for new RISC-V extensions. *)

type t = {
  sems : (Riscv.Op.t, Ir.sem) Hashtbl.t;
  json : Json.t; (* the intermediate JSON document *)
  removed_error_handling : int; (* statements stripped by simplification *)
}

exception Unknown_clause of string

(* Clause names are opcode mnemonics with '.' spelled '_': FCVT_W_D. *)
let op_of_clause_name name =
  let mnemonic =
    String.lowercase_ascii name
    |> String.map (fun c -> if c = '_' then '.' else c)
  in
  match Riscv.Op.of_mnemonic mnemonic with
  | Some op -> op
  | None -> raise (Unknown_clause name)

let pipeline_of_text text : t =
  let ast = Parse.parse_spec text in
  let removed = Simplify.count_error_handling ast in
  let simplified = Simplify.simplify ast in
  let ir = Compile.lower simplified in
  let json = Ir.spec_to_json ir in
  (* stage 2 consumes the JSON, exactly as the paper's C++ generator does *)
  let reread = Ir.spec_of_json (Json.of_string (Json.to_string json)) in
  let sems = Hashtbl.create 256 in
  List.iter
    (fun (s : Ir.sem) -> Hashtbl.replace sems (op_of_clause_name s.Ir.sem_name) s)
    reread;
  { sems; json; removed_error_handling = removed }

let default = lazy (pipeline_of_text Spec.text)

(* Semantics for an opcode, from the default RV64GC specification. *)
let sem_of_op (op : Riscv.Op.t) : Ir.sem option =
  Hashtbl.find_opt (Lazy.force default).sems op

let summary_of_op op = Option.map Ir.summarize (sem_of_op op)

(* The JSON document for external consumers (bin/sail_pipeline dumps it). *)
let json_ir () = (Lazy.force default).json
let removed_error_handling () = (Lazy.force default).removed_error_handling
