(* AST -> IR compiler: resolves operand-field identifiers, lowers builtin
   function calls to IR constructors, and leaves everything else as
   uninterpreted [Opaque] applications. *)

exception Compile_error of string

let fail fmt = Format.kasprintf (fun s -> raise (Compile_error s)) fmt

let lower_binop : Ast.binop -> Ir.binop = function
  | Ast.Add -> Ir.Add
  | Ast.Sub -> Ir.Sub
  | Ast.Mul -> Ir.Mul
  | Ast.DivS -> Ir.DivS
  | Ast.RemS -> Ir.RemS
  | Ast.And -> Ir.And
  | Ast.Or -> Ir.Or
  | Ast.Xor -> Ir.Xor
  | Ast.Eq -> Ir.Eq
  | Ast.Ne -> Ir.Ne
  | Ast.LtS -> Ir.LtS
  | Ast.LeS -> Ir.LeS
  | Ast.GtS -> Ir.GtS
  | Ast.GeS -> Ir.GeS

let lower_unop : Ast.unop -> Ir.unop = function
  | Ast.Neg -> Ir.Neg
  | Ast.BitNot -> Ir.BitNot
  | Ast.BoolNot -> Ir.BoolNot

let field_of_string ~clause = function
  | "rd" -> Ir.F_rd
  | "rs1" -> Ir.F_rs1
  | "rs2" -> Ir.F_rs2
  | "rs3" -> Ir.F_rs3
  | f -> fail "%s: unknown operand field %s" clause f

(* [bound] tracks let-bound names so unknown identifiers are reported. *)
let rec lower_expr ~clause ~bound (e : Ast.expr) : Ir.expr =
  let recur = lower_expr ~clause ~bound in
  match e with
  | Ast.Int v -> Ir.Const v
  | Ast.Ident "imm" -> Ir.ImmVal
  | Ast.Ident "csr" -> Ir.CsrVal
  | Ast.Ident "pc" -> Ir.ReadPC
  | Ast.Ident "next_pc" -> Ir.NextPC
  | Ast.Ident x ->
      if List.mem x bound then Ir.Var x
      else fail "%s: unbound identifier %s" clause x
  | Ast.XReg f -> Ir.ReadX (field_of_string ~clause f)
  | Ast.FReg f -> Ir.ReadF (field_of_string ~clause f)
  | Ast.Binop (op, a, b) -> Ir.Binop (lower_binop op, recur a, recur b)
  | Ast.Unop (op, a) -> Ir.Unop (lower_unop op, recur a)
  | Ast.Call (name, args) -> (
      let args' () = List.map recur args in
      match (name, args) with
      | "sign_extend", [ a; Ast.Int n ] -> Ir.SignExt (recur a, Int64.to_int n)
      | "zero_extend", [ a; Ast.Int n ] -> Ir.ZeroExt (recur a, Int64.to_int n)
      | "shift_left", [ a; b ] -> Ir.Binop (Ir.Shl, recur a, recur b)
      | "shift_right_logical", [ a; b ] -> Ir.Binop (Ir.LshR, recur a, recur b)
      | "shift_right_arith", [ a; b ] -> Ir.Binop (Ir.AshR, recur a, recur b)
      | "lt_u", [ a; b ] -> Ir.Binop (Ir.LtU, recur a, recur b)
      | "ge_u", [ a; b ] -> Ir.Binop (Ir.GeU, recur a, recur b)
      | "div_u", [ a; b ] -> Ir.Binop (Ir.DivU, recur a, recur b)
      | "rem_u", [ a; b ] -> Ir.Binop (Ir.RemU, recur a, recur b)
      | "mulh", [ a; b ] -> Ir.Binop (Ir.MulH, recur a, recur b)
      | "mulhu", [ a; b ] -> Ir.Binop (Ir.MulHU, recur a, recur b)
      | "mulhsu", [ a; b ] -> Ir.Binop (Ir.MulHSU, recur a, recur b)
      | "mem_read_8", [ a ] -> Ir.Load (8, recur a)
      | "mem_read_16", [ a ] -> Ir.Load (16, recur a)
      | "mem_read_32", [ a ] -> Ir.Load (32, recur a)
      | "mem_read_64", [ a ] -> Ir.Load (64, recur a)
      | "min_int64", [] -> Ir.Const Int64.min_int
      | _ -> Ir.Opaque (name, args' ()))

let rec lower_stmts ~clause ~bound (stmts : Ast.stmt list) : Ir.stmt list =
  match stmts with
  | [] -> []
  | s :: rest -> (
      match s with
      | Ast.Let (x, e) ->
          Ir.SLet (x, lower_expr ~clause ~bound e)
          :: lower_stmts ~clause ~bound:(x :: bound) rest
      | Ast.AssignX (f, e) ->
          Ir.SSetX (field_of_string ~clause f, lower_expr ~clause ~bound e)
          :: lower_stmts ~clause ~bound rest
      | Ast.AssignF (f, e) ->
          Ir.SSetF (field_of_string ~clause f, lower_expr ~clause ~bound e)
          :: lower_stmts ~clause ~bound rest
      | Ast.AssignPC e ->
          Ir.SSetPC (lower_expr ~clause ~bound e)
          :: lower_stmts ~clause ~bound rest
      | Ast.AssignFCSR e ->
          Ir.SSetFCSR (lower_expr ~clause ~bound e)
          :: lower_stmts ~clause ~bound rest
      | Ast.MemWrite (w, a, v) ->
          Ir.SStore (w, lower_expr ~clause ~bound a, lower_expr ~clause ~bound v)
          :: lower_stmts ~clause ~bound rest
      | Ast.If (c, a, b) ->
          Ir.SIf
            ( lower_expr ~clause ~bound c,
              lower_stmts ~clause ~bound a,
              lower_stmts ~clause ~bound b )
          :: lower_stmts ~clause ~bound rest
      | Ast.Effect (name, args) ->
          Ir.SEffect (name, List.map (lower_expr ~clause ~bound) args)
          :: lower_stmts ~clause ~bound rest
      | Ast.Trap _ | Ast.Retire | Ast.Skip ->
          (* tolerated if the caller skipped simplification *)
          lower_stmts ~clause ~bound rest)

let lower_clause (c : Ast.clause) : Ir.sem =
  {
    Ir.sem_name = c.Ast.name;
    stmts = lower_stmts ~clause:c.Ast.name ~bound:[] c.Ast.body;
  }

let lower (spec : Ast.spec) : Ir.sem list = List.map lower_clause spec
