lib/sail/sail.ml: Compile Hashtbl Ir Json Lazy List Option Parse Riscv Simplify Spec String
