lib/sail/eval.ml: Bits Dyn_util Float Format Int64 Ir List Option Riscv
