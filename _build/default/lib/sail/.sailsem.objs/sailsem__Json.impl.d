lib/sail/json.ml: Buffer Char Format Int64 List Printf String
