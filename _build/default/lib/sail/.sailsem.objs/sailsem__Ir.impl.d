lib/sail/ir.ml: Int64 Json List
