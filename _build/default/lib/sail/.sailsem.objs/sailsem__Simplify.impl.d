lib/sail/simplify.ml: Ast List
