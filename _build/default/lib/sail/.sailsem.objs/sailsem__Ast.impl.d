lib/sail/ast.ml:
