lib/sail/spec.ml: String
