lib/sail/parse.ml: Ast Format Int64 List String
