lib/sail/sail.mli: Hashtbl Ir Json Riscv
