lib/sail/compile.ml: Ast Format Int64 Ir List
