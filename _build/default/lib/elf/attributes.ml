(* The .riscv.attributes section (paper §3.2.1).

   Format (RISC-V psABI attribute section, modelled on ARM's):

     'A'                                 format-version byte
     <sub-section>*
       uint32   length (including this word)
       "riscv\0"  vendor name
       <sub-sub-section>*
         uleb128  tag   (1 = Tag_File)
         uint32   length (including tag+length)
         <attribute>*
           uleb128 tag
           value: NUL-string if tag is odd ... except RISC-V deviates:
                  Tag_RISCV_arch (5) is a string; stack_align (4) and
                  unaligned_access (6) are uleb128.

   We implement the tags Dyninst cares about: Tag_RISCV_stack_align (4),
   Tag_RISCV_arch (5), Tag_RISCV_unaligned_access (6). *)

open Dyn_util

type t = {
  arch : string option; (* e.g. "rv64imafdc_zicsr_zifencei" *)
  stack_align : int option;
  unaligned_access : bool option;
}

let empty = { arch = None; stack_align = None; unaligned_access = None }

let tag_file = 1
let tag_stack_align = 4
let tag_arch = 5
let tag_unaligned_access = 6

exception Malformed of string

let malformed fmt = Format.kasprintf (fun s -> raise (Malformed s)) fmt

(* Is this uleb-valued or string-valued?  Per the RISC-V psABI, even tags
   are uleb128 and odd tags are NUL-terminated strings. *)
let tag_is_string tag = tag land 1 = 1

let parse (data : Bytes.t) : t =
  let total = Bytes.length data in
  if total = 0 then malformed "empty attributes section";
  if Bytes.get data 0 <> 'A' then
    malformed "bad format-version byte 0x%02x" (Char.code (Bytes.get data 0));
  let attrs = ref empty in
  let pos = ref 1 in
  while !pos < total do
    let r = Byte_buf.reader data ~pos:!pos in
    let sub_len = Byte_buf.u32 r in
    if sub_len < 4 || !pos + sub_len > total then
      malformed "sub-section length %d out of range" sub_len;
    let vendor = Byte_buf.cstring r in
    let sub_end = !pos + sub_len in
    if vendor = "riscv" then begin
      while Byte_buf.pos r < sub_end do
        let tag = Byte_buf.uleb128 r in
        let sss_start = Byte_buf.pos r in
        let sss_len = Byte_buf.u32 r in
        let sss_end = sss_start + sss_len - 1 in
        (* -1: length covers the tag byte that preceded it; for the
           single-byte tag values we use this is exact. *)
        if sss_end > sub_end then malformed "sub-sub-section overruns";
        if tag = tag_file then begin
          while Byte_buf.pos r < sss_end do
            let atag = Byte_buf.uleb128 r in
            if tag_is_string atag then begin
              let v = Byte_buf.cstring r in
              if atag = tag_arch then attrs := { !attrs with arch = Some v }
            end
            else begin
              let v = Byte_buf.uleb128 r in
              if atag = tag_stack_align then
                attrs := { !attrs with stack_align = Some v }
              else if atag = tag_unaligned_access then
                attrs := { !attrs with unaligned_access = Some (v <> 0) }
            end
          done
        end;
        Byte_buf.seek r sss_end
      done
    end;
    pos := sub_end
  done;
  !attrs

let build (t : t) : Bytes.t =
  (* inner attribute bytes *)
  let attrs = Byte_buf.writer () in
  (match t.stack_align with
  | Some v ->
      Byte_buf.w_uleb128 attrs tag_stack_align;
      Byte_buf.w_uleb128 attrs v
  | None -> ());
  (match t.arch with
  | Some s ->
      Byte_buf.w_uleb128 attrs tag_arch;
      Byte_buf.w_cstring attrs s
  | None -> ());
  (match t.unaligned_access with
  | Some v ->
      Byte_buf.w_uleb128 attrs tag_unaligned_access;
      Byte_buf.w_uleb128 attrs (if v then 1 else 0)
  | None -> ());
  let attr_bytes = Byte_buf.w_contents attrs in
  (* Tag_File sub-sub-section: tag(1 byte) + u32 length + attrs;
     the length covers tag+length+attrs. *)
  let sss_len = 1 + 4 + Bytes.length attr_bytes in
  (* vendor sub-section: u32 len + "riscv\0" + sss *)
  let sub_len = 4 + 6 + sss_len in
  let out = Byte_buf.writer () in
  Byte_buf.w_u8 out (Char.code 'A');
  Byte_buf.w_u32 out sub_len;
  Byte_buf.w_cstring out "riscv";
  Byte_buf.w_uleb128 out tag_file;
  Byte_buf.w_u32 out sss_len;
  Byte_buf.w_bytes out attr_bytes;
  Byte_buf.w_contents out

let section_of t =
  Types.section ".riscv.attributes" ~s_type:Types.sht_riscv_attributes
    (build t)

(* Find and parse the attributes in an image, if present. *)
let of_image (img : Types.image) : t option =
  match Types.find_section img ".riscv.attributes" with
  | Some s -> Some (parse s.Types.s_data)
  | None -> None
