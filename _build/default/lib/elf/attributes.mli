(** The [.riscv.attributes] section (paper §3.2.1): the vendor attribute
    blob whose Tag_RISCV_arch string tells tools which extensions a
    binary was compiled for.  SymtabAPI parses it to build the mutatee's
    profile; the mini-C driver emits it into every binary it links. *)

type t = {
  arch : string option;  (** e.g. ["rv64imafdc_zicsr_zifencei"] *)
  stack_align : int option;  (** Tag_RISCV_stack_align *)
  unaligned_access : bool option;  (** Tag_RISCV_unaligned_access *)
}

val empty : t

exception Malformed of string

(** Parse section contents.
    @raise Malformed on format-version or length errors. *)
val parse : Bytes.t -> t

(** Serialize into the psABI wire format ('A' + vendor sub-section +
    Tag_File sub-sub-section). *)
val build : t -> Bytes.t

(** [build] wrapped as a ready-to-add [.riscv.attributes] section. *)
val section_of : t -> Types.section

(** Find and parse the attributes in an image, if the section exists. *)
val of_image : Types.image -> t option

(**/**)

val tag_file : int
val tag_stack_align : int
val tag_arch : int
val tag_unaligned_access : int
val tag_is_string : int -> bool
