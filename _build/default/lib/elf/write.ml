(* ELF64 writer: serializes a [Types.image] into an executable file.

   Layout strategy: the ELF header and program headers come first, then
   each allocatable section's bytes at a file offset congruent to its
   virtual address modulo the page size (so PT_LOAD mapping is direct),
   then non-alloc sections (symtab/strtab/attributes), and the section
   header table last.  One PT_LOAD segment is emitted per run of
   contiguous allocatable sections with identical permissions. *)

open Types
open Dyn_util

let page_size = 0x1000
let ehdr_size = 64
let phdr_size = 56
let shdr_size = 64

let seg_flags_of_section s =
  let f = pf_r in
  let f = if s.s_flags land shf_write <> 0 then f lor pf_w else f in
  let f = if s.s_flags land shf_execinstr <> 0 then f lor pf_x else f in
  f

(* Group consecutive allocatable sections into (flags, vaddr, sections)
   runs.  Sections must be pre-sorted by address. *)
let rec group_segments = function
  | [] -> []
  | s :: rest ->
      let flags = seg_flags_of_section s in
      let rec take acc last = function
        | s2 :: more
          when seg_flags_of_section s2 = flags
               && Int64.compare s2.s_addr last >= 0
               && Int64.compare s2.s_addr (Int64.add last (Int64.of_int page_size)) <= 0 ->
            take (s2 :: acc) (Int64.add s2.s_addr (Int64.of_int s2.s_size)) more
        | more -> (List.rev acc, more)
      in
      let run, rest =
        take [ s ] (Int64.add s.s_addr (Int64.of_int s.s_size)) rest
      in
      (flags, run) :: group_segments rest

let write (img : image) : Bytes.t =
  let alloc, non_alloc =
    List.partition (fun s -> s.s_flags land shf_alloc <> 0) img.sections
  in
  let alloc =
    List.sort (fun a b -> Int64.compare a.s_addr b.s_addr) alloc
  in
  let seg_groups = group_segments alloc in
  let n_phdrs = List.length seg_groups in
  (* section order in the file: null, alloc..., non-alloc..., shstrtab *)
  let shstrtab_needed = alloc @ non_alloc in
  let shstrtab =
    let b = Buffer.create 128 in
    Buffer.add_char b '\000';
    let offsets =
      List.map
        (fun s ->
          let off = Buffer.length b in
          Buffer.add_string b s.s_name;
          Buffer.add_char b '\000';
          (s.s_name, off))
        shstrtab_needed
    in
    let self_off = Buffer.length b in
    Buffer.add_string b ".shstrtab";
    Buffer.add_char b '\000';
    (Buffer.to_bytes b, offsets, self_off)
  in
  let shstrtab_bytes, name_offsets, shstrtab_name_off = shstrtab in
  let name_off n = try List.assoc n name_offsets with Not_found -> 0 in

  (* assign file offsets *)
  let header_end = ehdr_size + (n_phdrs * phdr_size) in
  let offsets : (string, int) Hashtbl.t = Hashtbl.create 16 in
  let cursor = ref header_end in
  List.iter
    (fun s ->
      if s.s_type = sht_nobits then Hashtbl.replace offsets s.s_name !cursor
      else begin
        (* file offset must be congruent to vaddr mod page for PT_LOAD *)
        let want = Int64.to_int (Int64.rem s.s_addr (Int64.of_int page_size)) in
        let cur_mod = !cursor mod page_size in
        let pad = (want - cur_mod + page_size) mod page_size in
        cursor := !cursor + pad;
        Hashtbl.replace offsets s.s_name !cursor;
        cursor := !cursor + s.s_size
      end)
    alloc;
  List.iter
    (fun s ->
      let align = max 1 s.s_addralign in
      cursor := Int64.to_int (Bits.align_up (Int64.of_int !cursor) align);
      Hashtbl.replace offsets s.s_name !cursor;
      if s.s_type <> sht_nobits then cursor := !cursor + s.s_size)
    non_alloc;
  let shstrtab_off =
    cursor := Int64.to_int (Bits.align_up (Int64.of_int !cursor) 8);
    let o = !cursor in
    cursor := !cursor + Bytes.length shstrtab_bytes;
    o
  in
  let shoff =
    cursor := Int64.to_int (Bits.align_up (Int64.of_int !cursor) 8);
    !cursor
  in
  let all_sections = alloc @ non_alloc in
  let n_shdrs = List.length all_sections + 2 (* null + shstrtab *) in
  let total = shoff + (n_shdrs * shdr_size) in

  let buf = Bytes.make total '\000' in
  (* --- ELF header --- *)
  Bytes.set buf 0 '\x7f';
  Bytes.blit_string "ELF" 0 buf 1 3;
  Bytes.set buf 4 (Char.chr elfclass64);
  Bytes.set buf 5 (Char.chr elfdata2lsb);
  Bytes.set buf 6 (Char.chr ev_current);
  Bytes.set_uint16_le buf 16 img.e_type;
  Bytes.set_uint16_le buf 18 img.machine;
  Bytes.set_int32_le buf 20 1l;
  Bytes.set_int64_le buf 24 img.entry;
  Bytes.set_int64_le buf 32 (Int64.of_int (if n_phdrs > 0 then ehdr_size else 0));
  Bytes.set_int64_le buf 40 (Int64.of_int shoff);
  Bytes.set_int32_le buf 48 (Int32.of_int img.e_flags);
  Bytes.set_uint16_le buf 52 ehdr_size;
  Bytes.set_uint16_le buf 54 phdr_size;
  Bytes.set_uint16_le buf 56 n_phdrs;
  Bytes.set_uint16_le buf 58 shdr_size;
  Bytes.set_uint16_le buf 60 n_shdrs;
  Bytes.set_uint16_le buf 62 (n_shdrs - 1) (* shstrndx: last *);

  (* --- program headers --- *)
  List.iteri
    (fun k (flags, run) ->
      let first = List.hd run in
      let off = Hashtbl.find offsets first.s_name in
      let vaddr = first.s_addr in
      let last = List.nth run (List.length run - 1) in
      let memsz = Int64.sub (Int64.add last.s_addr (Int64.of_int last.s_size)) vaddr in
      let filesz =
        (* NOBITS tails occupy memory but not file *)
        let rec file_end acc = function
          | [] -> acc
          | s :: rest ->
              let acc =
                if s.s_type = sht_nobits then acc
                else Int64.sub (Int64.add s.s_addr (Int64.of_int s.s_size)) vaddr
              in
              file_end acc rest
        in
        file_end 0L run
      in
      let base = ehdr_size + (k * phdr_size) in
      Bytes.set_int32_le buf base (Int32.of_int pt_load);
      Bytes.set_int32_le buf (base + 4) (Int32.of_int flags);
      Bytes.set_int64_le buf (base + 8) (Int64.of_int off);
      Bytes.set_int64_le buf (base + 16) vaddr;
      Bytes.set_int64_le buf (base + 24) vaddr (* paddr *);
      Bytes.set_int64_le buf (base + 32) filesz;
      Bytes.set_int64_le buf (base + 40) memsz;
      Bytes.set_int64_le buf (base + 48) (Int64.of_int page_size))
    seg_groups;

  (* --- section contents --- *)
  List.iter
    (fun s ->
      if s.s_type <> sht_nobits then
        Bytes.blit s.s_data 0 buf (Hashtbl.find offsets s.s_name) s.s_size)
    all_sections;
  Bytes.blit shstrtab_bytes 0 buf shstrtab_off (Bytes.length shstrtab_bytes);

  (* --- section headers --- *)
  let section_index name =
    (* index in the shdr table: null is 0, then file order *)
    let rec go k = function
      | [] -> 0
      | s :: rest -> if s.s_name = name then k else go (k + 1) rest
    in
    go 1 all_sections
  in
  let write_shdr k ~name_off ~s_type ~flags ~addr ~off ~size ~link ~info
      ~align ~entsize =
    let base = shoff + (k * shdr_size) in
    Bytes.set_int32_le buf base (Int32.of_int name_off);
    Bytes.set_int32_le buf (base + 4) (Int32.of_int s_type);
    Bytes.set_int64_le buf (base + 8) (Int64.of_int flags);
    Bytes.set_int64_le buf (base + 16) addr;
    Bytes.set_int64_le buf (base + 24) (Int64.of_int off);
    Bytes.set_int64_le buf (base + 32) (Int64.of_int size);
    Bytes.set_int32_le buf (base + 40) (Int32.of_int link);
    Bytes.set_int32_le buf (base + 44) (Int32.of_int info);
    Bytes.set_int64_le buf (base + 48) (Int64.of_int align);
    Bytes.set_int64_le buf (base + 56) (Int64.of_int entsize)
  in
  List.iteri
    (fun k s ->
      let link =
        (* symtab links to its strtab by convention *)
        if s.s_type = sht_symtab then section_index ".strtab" else s.s_link
      in
      write_shdr (k + 1) ~name_off:(name_off s.s_name) ~s_type:s.s_type
        ~flags:s.s_flags ~addr:s.s_addr
        ~off:(Hashtbl.find offsets s.s_name)
        ~size:s.s_size ~link ~info:s.s_info ~align:(max 1 s.s_addralign)
        ~entsize:s.s_entsize)
    all_sections;
  write_shdr (n_shdrs - 1) ~name_off:shstrtab_name_off ~s_type:sht_strtab
    ~flags:0 ~addr:0L ~off:shstrtab_off ~size:(Bytes.length shstrtab_bytes)
    ~link:0 ~info:0 ~align:1 ~entsize:0;
  buf

(* Build .symtab / .strtab sections from [img.symbols]; returns the two
   sections to be appended before calling [write].  The section-header
   index of each symbol is resolved against the alloc+non_alloc order
   that [write] uses, so call this with the final section list. *)
let build_symtab (img : image) : section list =
  if img.symbols = [] then []
  else begin
    let strtab = Buffer.create 128 in
    Buffer.add_char strtab '\000';
    let alloc, non_alloc =
      List.partition (fun s -> s.s_flags land shf_alloc <> 0) img.sections
    in
    let alloc = List.sort (fun a b -> Int64.compare a.s_addr b.s_addr) alloc in
    let ordered = alloc @ non_alloc in
    let section_index name =
      let rec go k = function
        | [] -> 0
        | s :: rest -> if s.s_name = name then k else go (k + 1) rest
      in
      go 1 ordered
    in
    let b = Byte_buf.writer () in
    (* null symbol *)
    for _ = 1 to 24 do
      Byte_buf.w_u8 b 0
    done;
    (* locals must precede globals; sh_info = index of first global *)
    let locals, globals =
      List.partition (fun s -> s.sym_bind = stb_local) img.symbols
    in
    let emit (s : symbol) =
      let name_off = Buffer.length strtab in
      Buffer.add_string strtab s.sym_name;
      Buffer.add_char strtab '\000';
      Byte_buf.w_u32 b name_off;
      Byte_buf.w_u8 b ((s.sym_bind lsl 4) lor (s.sym_type land 0xF));
      Byte_buf.w_u8 b 0 (* st_other *);
      Byte_buf.w_u16 b
        (match s.sym_section with Some sec -> section_index sec | None -> 0);
      Byte_buf.w_u64 b s.sym_value;
      Byte_buf.w_u64 b s.sym_size
    in
    List.iter emit locals;
    List.iter emit globals;
    [
      section ".symtab" ~s_type:sht_symtab ~s_entsize:24 ~s_addralign:8
        ~s_info:(1 + List.length locals)
        (Byte_buf.w_contents b);
      section ".strtab" ~s_type:sht_strtab (Buffer.to_bytes strtab);
    ]
  end

(* Serialize a complete image: symtab/strtab are generated from
   [img.symbols] and appended automatically. *)
let to_bytes (img : image) : Bytes.t =
  let extra = build_symtab img in
  write { img with sections = img.sections @ extra }

let to_file path img =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_bytes oc (to_bytes img))
