(* ELF64 reader: parses bytes into a [Types.image].

   The reader is deliberately forgiving about things Dyninst does not
   need (it ignores unknown section types) but strict about structural
   integrity: truncated headers or out-of-range offsets raise
   [Types.Format_error], which SymtabAPI surfaces to the user. *)

open Types
open Dyn_util

let check_bounds what off size total =
  if off < 0 || size < 0 || off + size > total then
    format_error "%s out of range: offset %d size %d file %d" what off size total

let read_exn (data : Bytes.t) : image =
  let total = Bytes.length data in
  if total < 64 then format_error "file too short for ELF header (%d bytes)" total;
  if Bytes.get data 0 <> '\x7f' || Bytes.sub_string data 1 3 <> "ELF" then
    format_error "bad ELF magic";
  if Char.code (Bytes.get data 4) <> elfclass64 then
    format_error "not ELFCLASS64";
  if Char.code (Bytes.get data 5) <> elfdata2lsb then
    format_error "not little-endian";
  let r = Byte_buf.reader data ~pos:16 in
  let e_type = Byte_buf.u16 r in
  let machine = Byte_buf.u16 r in
  let _version = Byte_buf.u32 r in
  let entry = Byte_buf.u64 r in
  let phoff = Int64.to_int (Byte_buf.u64 r) in
  let shoff = Int64.to_int (Byte_buf.u64 r) in
  let e_flags = Byte_buf.u32 r in
  let _ehsize = Byte_buf.u16 r in
  let phentsize = Byte_buf.u16 r in
  let phnum = Byte_buf.u16 r in
  let shentsize = Byte_buf.u16 r in
  let shnum = Byte_buf.u16 r in
  let shstrndx = Byte_buf.u16 r in

  (* program headers *)
  let segments =
    if phnum = 0 then []
    else begin
      check_bounds "program headers" phoff (phnum * phentsize) total;
      List.init phnum (fun k ->
          let r = Byte_buf.reader data ~pos:(phoff + (k * phentsize)) in
          let p_type = Byte_buf.u32 r in
          let p_flags = Byte_buf.u32 r in
          let p_offset = Byte_buf.u64 r in
          let p_vaddr = Byte_buf.u64 r in
          let _paddr = Byte_buf.u64 r in
          let p_filesz = Byte_buf.u64 r in
          let p_memsz = Byte_buf.u64 r in
          let p_align = Byte_buf.u64 r in
          { p_type; p_flags; p_offset; p_vaddr; p_filesz; p_memsz; p_align })
    end
  in

  (* raw section headers *)
  let raw_shdrs =
    if shnum = 0 then []
    else begin
      check_bounds "section headers" shoff (shnum * shentsize) total;
      List.init shnum (fun k ->
          let r = Byte_buf.reader data ~pos:(shoff + (k * shentsize)) in
          let name_off = Byte_buf.u32 r in
          let s_type = Byte_buf.u32 r in
          let flags = Int64.to_int (Byte_buf.u64 r) in
          let addr = Byte_buf.u64 r in
          let off = Int64.to_int (Byte_buf.u64 r) in
          let size = Int64.to_int (Byte_buf.u64 r) in
          let link = Byte_buf.u32 r in
          let info = Byte_buf.u32 r in
          let align = Int64.to_int (Byte_buf.u64 r) in
          let entsize = Int64.to_int (Byte_buf.u64 r) in
          (name_off, s_type, flags, addr, off, size, link, info, align, entsize))
    end
  in
  let shstr_data =
    match List.nth_opt raw_shdrs shstrndx with
    | Some (_, _, _, _, off, size, _, _, _, _) when shstrndx <> 0 ->
        check_bounds ".shstrtab" off size total;
        Bytes.sub data off size
    | _ -> Bytes.empty
  in
  let string_at tab off =
    if off >= Bytes.length tab then
      format_error "string offset %d beyond table (%d)" off (Bytes.length tab)
    else
      let r = Byte_buf.reader tab ~pos:off in
      Byte_buf.cstring r
  in
  let sections_arr =
    Array.of_list
      (List.map
         (fun (name_off, s_type, s_flags, s_addr, off, size, s_link, s_info,
               s_addralign, s_entsize) ->
           let s_name =
             if s_type = sht_null then "" else string_at shstr_data name_off
           in
           let s_data =
             if s_type = sht_nobits || s_type = sht_null then Bytes.empty
             else begin
               check_bounds s_name off size total;
               Bytes.sub data off size
             end
           in
           { s_name; s_type; s_flags; s_addr; s_data; s_size = size;
             s_addralign; s_entsize; s_link; s_info })
         raw_shdrs)
  in
  let section_name_of_index k =
    if k > 0 && k < Array.length sections_arr then
      Some sections_arr.(k).s_name
    else None
  in
  (* symbols: first SHT_SYMTAB section, strings from its sh_link *)
  let symbols =
    match
      Array.to_list sections_arr
      |> List.mapi (fun k s -> (k, s))
      |> List.find_opt (fun (_, s) -> s.s_type = sht_symtab)
    with
    | None -> []
    | Some (_, symtab) ->
        let strtab =
          if symtab.s_link > 0 && symtab.s_link < Array.length sections_arr then
            sections_arr.(symtab.s_link).s_data
          else Bytes.empty
        in
        let n = symtab.s_size / 24 in
        List.init n (fun k ->
            let r = Byte_buf.reader symtab.s_data ~pos:(k * 24) in
            let name_off = Byte_buf.u32 r in
            let info = Byte_buf.u8 r in
            let _other = Byte_buf.u8 r in
            let shndx = Byte_buf.u16 r in
            let sym_value = Byte_buf.u64 r in
            let sym_size = Byte_buf.u64 r in
            let sym_name =
              if name_off = 0 || Bytes.length strtab = 0 then ""
              else string_at strtab name_off
            in
            {
              sym_name;
              sym_value;
              sym_size;
              sym_bind = info lsr 4;
              sym_type = info land 0xF;
              sym_section = section_name_of_index shndx;
            })
        |> List.filter (fun s -> s.sym_name <> "")
  in
  let sections =
    Array.to_list sections_arr
    |> List.filter (fun s ->
           s.s_type <> sht_null && s.s_name <> ".shstrtab")
  in
  { machine; e_type; entry; e_flags; sections; symbols; segments }


(* Public entry point: every malformation surfaces as [Format_error]. *)
let read (data : Bytes.t) : image =
  try read_exn data with
  | Byte_buf.Out_of_bounds { pos; want; len } ->
      format_error "truncated structure: need %d bytes at offset %d of %d"
        want pos len
  | Invalid_argument msg -> format_error "malformed ELF: %s" msg

let of_file path : image =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let len = in_channel_length ic in
      let b = Bytes.create len in
      really_input ic b 0 len;
      read b)
