(* ELF64 constants and record types (little-endian only, which covers
   every RISC-V Linux system). *)

let elfclass64 = 2
let elfdata2lsb = 1
let ev_current = 1

(* object file types *)
let et_exec = 2
let et_dyn = 3

(* machines *)
let em_riscv = 243
let em_x86_64 = 62
let em_cisc64 = 0xC15C (* our comparator ISA; vendor-specific value *)

(* section types *)
let sht_null = 0
let sht_progbits = 1
let sht_symtab = 2
let sht_strtab = 3
let sht_nobits = 8
let sht_riscv_attributes = 0x70000003

(* section flags *)
let shf_write = 0x1
let shf_alloc = 0x2
let shf_execinstr = 0x4

(* segment types / flags *)
let pt_load = 1
let pf_x = 1
let pf_w = 2
let pf_r = 4

(* symbol binding / type *)
let stb_local = 0
let stb_global = 1
let stt_notype = 0
let stt_object = 1
let stt_func = 2
let stt_section = 3

(* RISC-V e_flags (psABI) *)
let ef_riscv_rvc = 0x0001
let ef_riscv_float_abi_mask = 0x0006
let ef_riscv_float_abi_soft = 0x0000
let ef_riscv_float_abi_single = 0x0002
let ef_riscv_float_abi_double = 0x0004

type section = {
  s_name : string;
  s_type : int;
  s_flags : int;
  s_addr : int64;
  s_data : Bytes.t; (* empty for SHT_NOBITS *)
  s_size : int; (* = Bytes.length s_data except for NOBITS *)
  s_addralign : int;
  s_entsize : int;
  s_link : int;
  s_info : int;
}

let section ?(s_type = sht_progbits) ?(s_flags = 0) ?(s_addr = 0L)
    ?(s_addralign = 1) ?(s_entsize = 0) ?(s_link = 0) ?(s_info = 0) ?s_size
    s_name s_data =
  let s_size = match s_size with Some s -> s | None -> Bytes.length s_data in
  { s_name; s_type; s_flags; s_addr; s_data; s_size; s_addralign; s_entsize;
    s_link; s_info }

type symbol = {
  sym_name : string;
  sym_value : int64;
  sym_size : int64;
  sym_bind : int;
  sym_type : int;
  sym_section : string option; (* None = SHN_UNDEF or SHN_ABS *)
}

let symbol ?(sym_size = 0L) ?(sym_bind = stb_global) ?(sym_type = stt_func)
    ?sym_section sym_name sym_value =
  { sym_name; sym_value; sym_size; sym_bind; sym_type; sym_section }

type segment = {
  p_type : int;
  p_flags : int;
  p_offset : int64;
  p_vaddr : int64;
  p_filesz : int64;
  p_memsz : int64;
  p_align : int64;
}

(* An in-memory ELF image: what the reader produces and the writer
   consumes.  Segments are derived by the writer; the reader records the
   ones it found. *)
type image = {
  machine : int;
  e_type : int;
  entry : int64;
  e_flags : int;
  sections : section list;
  symbols : symbol list;
  segments : segment list; (* empty when building an image by hand *)
}

let image ?(machine = em_riscv) ?(e_type = et_exec) ?(entry = 0L)
    ?(e_flags = 0) ?(symbols = []) ?(segments = []) sections =
  { machine; e_type; entry; e_flags; sections; symbols; segments }

let find_section img name =
  List.find_opt (fun s -> s.s_name = name) img.sections

exception Format_error of string

let format_error fmt = Format.kasprintf (fun s -> raise (Format_error s)) fmt
