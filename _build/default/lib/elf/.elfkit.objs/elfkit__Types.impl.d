lib/elf/types.ml: Bytes Format List
