lib/elf/attributes.ml: Byte_buf Bytes Char Dyn_util Format Types
