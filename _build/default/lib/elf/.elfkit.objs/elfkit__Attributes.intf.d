lib/elf/attributes.mli: Bytes Types
