lib/elf/read.ml: Array Byte_buf Bytes Char Dyn_util Fun Int64 List Types
