lib/elf/write.ml: Bits Buffer Byte_buf Bytes Char Dyn_util Fun Hashtbl Int32 Int64 List Types
