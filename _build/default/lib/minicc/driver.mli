(** The mini-C driver: source text -> RV64GC ELF image.

    The GCC stand-in of DESIGN.md: the paper compiles its mutatees with
    gcc at the default optimization level; this repository compiles them
    with the bundled non-optimizing compiler, giving the same structural
    diet (stack frames, loops with compare-and-branch blocks, calls and
    real jump tables) for ParseAPI to analyze.

    Layout: .text at 0x10000 (runtime first), .rodata (jump tables) at
    0x200000, .data (globals) at 0x300000; every image carries a
    [.riscv.attributes] section naming the rv64imafdc_zicsr_zifencei
    profile and function/global symbols. *)

exception Link_error of string

val text_base : int64
val rodata_base : int64
val data_base : int64

(** The arch string stamped into compiled binaries. *)
val arch_string : string

type compiled = {
  image : Elfkit.Types.image;
  fn_addrs : (string * int64) list;  (** user function name -> address *)
}

(** Compile a mini-C source string.
    @raise Cparse.Parse_error on syntax errors
    @raise Ccodegen.Codegen_error on semantic errors
    @raise Link_error when [main] is missing or a jump-table target is
    undefined. *)
val compile : string -> compiled

(** Compile and run directly in the simulator; returns the stop reason
    and the program's stdout. *)
val run : ?max_steps:int -> string -> Rvsim.Machine.stop * string
