(* Lexer and recursive-descent parser for mini-C. *)

open Cast

exception Parse_error of string

let fail fmt = Format.kasprintf (fun s -> raise (Parse_error s)) fmt

type token =
  | Tid of string
  | Tnum of int64
  | Tfnum of float
  | Tpunct of string
  | Teof

let keywords =
  [ "int"; "long"; "double"; "void"; "if"; "else"; "while"; "for"; "return";
    "switch"; "case"; "default"; "break" ]

let tokenize src =
  let n = String.length src in
  let toks = ref [] in
  let i = ref 0 in
  let is_id c =
    (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
    || c = '_'
  in
  while !i < n do
    let c = src.[!i] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if c = '/' && !i + 1 < n && src.[!i + 1] = '/' then
      while !i < n && src.[!i] <> '\n' do incr i done
    else if c = '/' && !i + 1 < n && src.[!i + 1] = '*' then begin
      i := !i + 2;
      while !i + 1 < n && not (src.[!i] = '*' && src.[!i + 1] = '/') do incr i done;
      i := !i + 2
    end
    else if (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' then begin
      let s = !i in
      while !i < n && is_id src.[!i] do incr i done;
      toks := Tid (String.sub src s (!i - s)) :: !toks
    end
    else if c >= '0' && c <= '9' then begin
      let s = !i in
      while !i < n && ((src.[!i] >= '0' && src.[!i] <= '9') || src.[!i] = 'x'
                       || (src.[!i] >= 'a' && src.[!i] <= 'f')
                       || (src.[!i] >= 'A' && src.[!i] <= 'F')) do incr i done;
      if !i < n && src.[!i] = '.' then begin
        incr i;
        while !i < n && src.[!i] >= '0' && src.[!i] <= '9' do incr i done;
        if !i < n && (src.[!i] = 'e' || src.[!i] = 'E') then begin
          incr i;
          if !i < n && (src.[!i] = '-' || src.[!i] = '+') then incr i;
          while !i < n && src.[!i] >= '0' && src.[!i] <= '9' do incr i done
        end;
        toks := Tfnum (float_of_string (String.sub src s (!i - s))) :: !toks
      end
      else toks := Tnum (Int64.of_string (String.sub src s (!i - s))) :: !toks
    end
    else begin
      let two = if !i + 1 < n then String.sub src !i 2 else "" in
      match two with
      | "==" | "!=" | "<=" | ">=" | "&&" | "||" | "<<" | ">>" ->
          toks := Tpunct two :: !toks;
          i := !i + 2
      | _ -> (
          match c with
          | '(' | ')' | '{' | '}' | '[' | ']' | ';' | ',' | ':' | '=' | '<'
          | '>' | '+' | '-' | '*' | '/' | '%' | '!' | '&' | '|' | '^' ->
              toks := Tpunct (String.make 1 c) :: !toks;
              incr i
          | _ -> fail "unexpected character %c at %d" c !i)
    end
  done;
  List.rev (Teof :: !toks)

type ps = { mutable toks : token list }

let peek p = match p.toks with t :: _ -> t | [] -> Teof
let peek2 p = match p.toks with _ :: t :: _ -> t | _ -> Teof
let advance p = match p.toks with _ :: r -> p.toks <- r | [] -> ()

let tok_str = function
  | Tid s -> s
  | Tnum v -> Int64.to_string v
  | Tfnum f -> string_of_float f
  | Tpunct s -> s
  | Teof -> "<eof>"

let eat p s =
  match peek p with
  | Tpunct q when q = s -> advance p
  | t -> fail "expected %s, got %s" s (tok_str t)

let eat_kw p kw =
  match peek p with
  | Tid s when s = kw -> advance p
  | t -> fail "expected %s, got %s" kw (tok_str t)

let ident p =
  match peek p with
  | Tid s when not (List.mem s keywords) ->
      advance p;
      s
  | t -> fail "expected identifier, got %s" (tok_str t)

let parse_ty p =
  match peek p with
  | Tid "int" | Tid "long" ->
      advance p;
      Tint
  | Tid "double" ->
      advance p;
      Tdouble
  | Tid "void" ->
      advance p;
      Tvoid
  | t -> fail "expected type, got %s" (tok_str t)

(* expressions; C-like precedence *)
let rec expr p = logical_or p

and logical_or p =
  let l = logical_and p in
  match peek p with
  | Tpunct "||" ->
      advance p;
      Ebin (Or, l, logical_or p)
  | _ -> l

and logical_and p =
  let l = bit_or p in
  match peek p with
  | Tpunct "&&" ->
      advance p;
      Ebin (And, l, logical_and p)
  | _ -> l

and bit_or p =
  let rec go l =
    match peek p with
    | Tpunct "|" -> advance p; go (Ebin (Bor, l, bit_xor p))
    | _ -> l
  in
  go (bit_xor p)

and bit_xor p =
  let rec go l =
    match peek p with
    | Tpunct "^" -> advance p; go (Ebin (Bxor, l, bit_and p))
    | _ -> l
  in
  go (bit_and p)

and bit_and p =
  let rec go l =
    match peek p with
    | Tpunct "&" -> advance p; go (Ebin (Band, l, equality p))
    | _ -> l
  in
  go (equality p)

and equality p =
  let rec go l =
    match peek p with
    | Tpunct "==" -> advance p; go (Ebin (Eq, l, relational p))
    | Tpunct "!=" -> advance p; go (Ebin (Ne, l, relational p))
    | _ -> l
  in
  go (relational p)

and relational p =
  let rec go l =
    match peek p with
    | Tpunct "<" -> advance p; go (Ebin (Lt, l, shift p))
    | Tpunct "<=" -> advance p; go (Ebin (Le, l, shift p))
    | Tpunct ">" -> advance p; go (Ebin (Gt, l, shift p))
    | Tpunct ">=" -> advance p; go (Ebin (Ge, l, shift p))
    | _ -> l
  in
  go (shift p)

and shift p =
  let rec go l =
    match peek p with
    | Tpunct "<<" -> advance p; go (Ebin (Shl, l, additive p))
    | Tpunct ">>" -> advance p; go (Ebin (Shr, l, additive p))
    | _ -> l
  in
  go (additive p)

and additive p =
  let rec go l =
    match peek p with
    | Tpunct "+" -> advance p; go (Ebin (Add, l, multiplicative p))
    | Tpunct "-" -> advance p; go (Ebin (Sub, l, multiplicative p))
    | _ -> l
  in
  go (multiplicative p)

and multiplicative p =
  let rec go l =
    match peek p with
    | Tpunct "*" -> advance p; go (Ebin (Mul, l, unary p))
    | Tpunct "/" -> advance p; go (Ebin (Div, l, unary p))
    | Tpunct "%" -> advance p; go (Ebin (Mod, l, unary p))
    | _ -> l
  in
  go (unary p)

and unary p =
  match peek p with
  | Tpunct "-" ->
      advance p;
      Eneg (unary p)
  | Tpunct "!" ->
      advance p;
      Enot (unary p)
  | _ -> postfix p

and postfix p =
  match peek p with
  | Tnum v ->
      advance p;
      Eint v
  | Tfnum f ->
      advance p;
      Efloat f
  | Tpunct "(" ->
      advance p;
      let e = expr p in
      eat p ")";
      e
  | Tid name when not (List.mem name keywords) -> (
      advance p;
      match peek p with
      | Tpunct "(" ->
          advance p;
          let args =
            if peek p = Tpunct ")" then []
            else
              let rec go acc =
                let e = expr p in
                match peek p with
                | Tpunct "," -> advance p; go (e :: acc)
                | _ -> List.rev (e :: acc)
              in
              go []
          in
          eat p ")";
          Ecall (name, args)
      | Tpunct "[" ->
          advance p;
          let i = expr p in
          eat p "]";
          Eindex (name, i)
      | _ -> Evar name)
  | t -> fail "unexpected token %s in expression" (tok_str t)

(* statements *)
let rec stmt p : stmt =
  match peek p with
  | Tid ("int" | "long" | "double") ->
      let ty = parse_ty p in
      let name = ident p in
      let init =
        match peek p with
        | Tpunct "=" ->
            advance p;
            Some (expr p)
        | _ -> None
      in
      eat p ";";
      Sdecl (ty, name, init)
  | Tid "if" ->
      advance p;
      eat p "(";
      let c = expr p in
      eat p ")";
      let then_b = block_or_stmt p in
      let else_b =
        match peek p with
        | Tid "else" ->
            advance p;
            block_or_stmt p
        | _ -> []
      in
      Sif (c, then_b, else_b)
  | Tid "while" ->
      advance p;
      eat p "(";
      let c = expr p in
      eat p ")";
      Swhile (c, block_or_stmt p)
  | Tid "for" ->
      advance p;
      eat p "(";
      let init = if peek p = Tpunct ";" then (advance p; None) else Some (simple_stmt p) in
      let cond = if peek p = Tpunct ";" then None else Some (expr p) in
      eat p ";";
      let step = if peek p = Tpunct ")" then None else Some (simple_stmt_noterm p) in
      eat p ")";
      Sfor (init, cond, step, block_or_stmt p)
  | Tid "switch" ->
      advance p;
      eat p "(";
      let e = expr p in
      eat p ")";
      eat p "{";
      let cases = ref [] and dflt = ref [] in
      let rec cases_loop () =
        match peek p with
        | Tpunct "}" -> advance p
        | Tid "case" ->
            advance p;
            let v =
              match peek p with
              | Tnum v -> advance p; v
              | Tpunct "-" -> (
                  advance p;
                  match peek p with
                  | Tnum v -> advance p; Int64.neg v
                  | t -> fail "expected number, got %s" (tok_str t))
              | t -> fail "expected case constant, got %s" (tok_str t)
            in
            eat p ":";
            let body = case_body p in
            cases := (v, body) :: !cases;
            cases_loop ()
        | Tid "default" ->
            advance p;
            eat p ":";
            dflt := case_body p;
            cases_loop ()
        | t -> fail "unexpected %s in switch" (tok_str t)
      and case_body p =
        let rec go acc =
          match peek p with
          | Tid "case" | Tid "default" | Tpunct "}" -> List.rev acc
          | _ -> go (stmt p :: acc)
        in
        go []
      in
      cases_loop ();
      Sswitch (e, List.rev !cases, !dflt)
  | Tid "return" ->
      advance p;
      if peek p = Tpunct ";" then begin
        advance p;
        Sreturn None
      end
      else begin
        let e = expr p in
        eat p ";";
        Sreturn (Some e)
      end
  | Tid "break" ->
      advance p;
      eat p ";";
      Sbreak
  | Tpunct "{" -> Sblock (block p)
  | _ ->
      let s = simple_stmt p in
      s

(* assignment / expression statement, consuming the ';' *)
and simple_stmt p =
  let s = simple_stmt_noterm p in
  eat p ";";
  s

and simple_stmt_noterm p =
  match (peek p, peek2 p) with
  | Tid name, Tpunct "=" when not (List.mem name keywords) ->
      advance p;
      advance p;
      Sassign (name, expr p)
  | Tid name, Tpunct "[" when not (List.mem name keywords) -> (
      (* could be store or expression involving an index; try store *)
      advance p;
      advance p;
      let idx = expr p in
      eat p "]";
      match peek p with
      | Tpunct "=" ->
          advance p;
          Sstore (name, idx, expr p)
      | _ -> fail "expected = after %s[...]" name)
  | _ -> Sexpr (expr p)

and block p : stmt list =
  eat p "{";
  let rec go acc =
    match peek p with
    | Tpunct "}" ->
        advance p;
        List.rev acc
    | _ -> go (stmt p :: acc)
  in
  go []

and block_or_stmt p =
  match peek p with Tpunct "{" -> block p | _ -> [ stmt p ]

(* top level *)
let parse_program (src : string) : program =
  let p = { toks = tokenize src } in
  let globals = ref [] and funcs = ref [] in
  let rec go () =
    match peek p with
    | Teof -> ()
    | _ ->
        let ty = parse_ty p in
        let name = ident p in
        (match peek p with
        | Tpunct "(" ->
            advance p;
            let params =
              if peek p = Tpunct ")" then []
              else
                let rec ps acc =
                  let pty = parse_ty p in
                  let pname = ident p in
                  let acc = { p_ty = pty; p_name = pname } :: acc in
                  match peek p with
                  | Tpunct "," -> advance p; ps acc
                  | _ -> List.rev acc
                in
                ps []
            in
            eat p ")";
            let body = block p in
            funcs := { fn_name = name; fn_ret = ty; fn_params = params; fn_body = body } :: !funcs
        | Tpunct "[" ->
            advance p;
            let count =
              match peek p with
              | Tnum v -> advance p; Int64.to_int v
              | t -> fail "expected array size, got %s" (tok_str t)
            in
            eat p "]";
            eat p ";";
            globals := { g_name = name; g_ty = ty; g_count = count; g_init = [] } :: !globals
        | Tpunct "=" ->
            advance p;
            let v =
              match (ty, peek p) with
              | Tint, Tnum v -> advance p; v
              | Tdouble, Tfnum f -> advance p; Int64.bits_of_float f
              | Tdouble, Tnum v -> advance p; Int64.bits_of_float (Int64.to_float v)
              | _, t -> fail "bad global initializer %s" (tok_str t)
            in
            eat p ";";
            globals := { g_name = name; g_ty = ty; g_count = 1; g_init = [ v ] } :: !globals
        | Tpunct ";" ->
            advance p;
            globals := { g_name = name; g_ty = ty; g_count = 1; g_init = [] } :: !globals
        | t -> fail "unexpected %s after %s" (tok_str t) name);
        go ()
  in
  go ();
  { globals = List.rev !globals; funcs = List.rev !funcs }
