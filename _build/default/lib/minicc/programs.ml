(* Canonical mini-C mutatee sources used by tests, examples and the
   benchmark harness. *)

(* The paper's benchmark application (§4.1): an N x N double-precision
   matrix multiply called repeatedly from main, timed with clock_gettime
   around the call loop.  The paper uses N = 100; the harness passes a
   smaller N with the same code shape so simulation stays fast.  The
   multiply function compiles to the same kind of triple loop (the paper
   counts 11 basic blocks in its gcc build). *)
let matmul ~n ~reps =
  Printf.sprintf
    {|
// N x N double matrix multiply, called %d times (paper section 4.1)
int N = %d;
double A[%d];
double B[%d];
double C[%d];

void init() {
  int i;
  for (i = 0; i < N * N; i = i + 1) {
    A[i] = 1.0 + i;
    B[i] = 2.0;
    C[i] = 0.0;
  }
}

void multiply() {
  int i;
  int j;
  int k;
  for (i = 0; i < N; i = i + 1) {
    for (j = 0; j < N; j = j + 1) {
      double s = 0.0;
      for (k = 0; k < N; k = k + 1) {
        s = s + A[i * N + k] * B[k * N + j];
      }
      C[i * N + j] = s;
    }
  }
}

int main() {
  int r;
  long t0;
  long t1;
  init();
  t0 = clock_ns();
  for (r = 0; r < %d; r = r + 1) {
    multiply();
  }
  t1 = clock_ns();
  print_int(t1 - t0);
  return 0;
}
|}
    reps n (n * n) (n * n) (n * n) reps

(* switch with dense cases: compiles to a jump table *)
let switch_demo =
  {|
int results[8];

int classify(int x) {
  switch (x) {
    case 0: return 100;
    case 1: return 101;
    case 2: return 102;
    case 3: return 103;
    case 4: return 104;
    case 5: return 105;
    default: return -1;
  }
}

int main() {
  int i;
  int sum;
  sum = 0;
  for (i = 0; i < 8; i = i + 1) {
    results[i] = classify(i);
    sum = sum + results[i];
  }
  // 100+...+105 + 2*(-1) = 613
  print_int(sum);
  return sum % 256;
}
|}

(* recursion + branching *)
let fib =
  {|
int fib(int n) {
  if (n < 2) {
    return n;
  }
  return fib(n - 1) + fib(n - 2);
}

int main() {
  print_int(fib(15));
  return fib(10);  // 55
}
|}

(* mixed int/double arithmetic and while loops *)
let mixed =
  {|
double acc = 0.0;

double scale(double x, int k) {
  double r;
  r = x;
  while (k > 0) {
    r = r * 2.0;
    k = k - 1;
  }
  return r;
}

int main() {
  int i;
  for (i = 1; i <= 4; i = i + 1) {
    acc = acc + scale(1.5, i);
  }
  // 3 + 6 + 12 + 24 = 45
  print_int(acc);
  return 45 - acc;
}
|}

(* function pointers are out of language scope, but tail-ish chains and
   many small functions exercise call classification *)
let calls =
  {|
int add1(int x) { return x + 1; }
int add2(int x) { return add1(add1(x)); }
int add4(int x) { return add2(add2(x)); }

int main() {
  print_int(add4(38));
  return add4(38) % 256;  // 42
}
|}
