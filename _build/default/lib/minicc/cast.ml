(* AST for the mini-C language used to build mutatees.

   The language is a small C subset: 64-bit ints, doubles, global scalars
   and arrays, functions, control flow including switch (so compiled
   binaries contain real jump tables for ParseAPI to analyze), and a few
   builtins (clock_ns, print_int, print_char, exit). *)

type ty = Tint | Tdouble | Tvoid

type expr =
  | Eint of int64
  | Efloat of float
  | Evar of string
  | Eindex of string * expr (* global array element *)
  | Ecall of string * expr list
  | Ebin of binop * expr * expr
  | Eneg of expr
  | Enot of expr

and binop =
  | Add | Sub | Mul | Div | Mod
  | Lt | Le | Gt | Ge | Eq | Ne
  | And | Or (* short-circuit logical *)
  | Band | Bor | Bxor | Shl | Shr

type stmt =
  | Sdecl of ty * string * expr option (* local declaration *)
  | Sassign of string * expr
  | Sstore of string * expr * expr (* array[index] = value *)
  | Sif of expr * stmt list * stmt list
  | Swhile of expr * stmt list
  | Sfor of stmt option * expr option * stmt option * stmt list
  | Sswitch of expr * (int64 * stmt list) list * stmt list (* cases, default *)
  | Sreturn of expr option
  | Sbreak
  | Sexpr of expr
  | Sblock of stmt list

type param = { p_ty : ty; p_name : string }

type func = {
  fn_name : string;
  fn_ret : ty;
  fn_params : param list;
  fn_body : stmt list;
}

type global = {
  g_name : string;
  g_ty : ty; (* element type *)
  g_count : int; (* 1 for scalars, >1 for arrays *)
  g_init : int64 list; (* raw 64-bit initializers, may be shorter *)
}

type program = { globals : global list; funcs : func list }
