(* mini-C driver: source text -> ELF image.

   Layout: .text at 0x10000 (runtime first, then user functions),
   .rodata (jump tables) at 0x200000, .data (globals) at 0x300000.
   Jump tables need code-label addresses, so assembly runs twice: once to
   place labels, once for real after the .rodata bytes are built. *)

open Riscv

exception Link_error of string

let text_base = 0x10000L
let rodata_base = 0x200000L
let data_base = 0x300000L

type compiled = {
  image : Elfkit.Types.image;
  fn_addrs : (string * int64) list;
}

let arch_string = "rv64imafdc_zicsr_zifencei"

let compile (source : string) : compiled =
  let prog = Cparse.parse_program source in
  (* global environment *)
  let genv =
    { Ccodegen.g_globals = Hashtbl.create 16; g_funcs = Hashtbl.create 16 }
  in
  List.iter
    (fun (f : Cast.func) -> Hashtbl.replace genv.Ccodegen.g_funcs f.Cast.fn_name f)
    prog.Cast.funcs;
  if not (Hashtbl.mem genv.Ccodegen.g_funcs "main") then
    raise (Link_error "no main function");
  (* lay out globals in .data *)
  let data = Buffer.create 256 in
  List.iter
    (fun (g : Cast.global) ->
      let addr = Int64.add data_base (Int64.of_int (Buffer.length data)) in
      Hashtbl.replace genv.Ccodegen.g_globals g.Cast.g_name
        { Ccodegen.gi_label = Ccodegen.global_label g.Cast.g_name;
          gi_ty = g.Cast.g_ty; gi_count = g.Cast.g_count };
      ignore addr;
      for k = 0 to g.Cast.g_count - 1 do
        let v = try List.nth g.Cast.g_init k with _ -> 0L in
        Buffer.add_int64_le data v
      done)
    prog.Cast.globals;
  (* compute global addresses (sequential, same order) *)
  let global_addrs = Hashtbl.create 16 in
  let cursor = ref data_base in
  List.iter
    (fun (g : Cast.global) ->
      Hashtbl.replace global_addrs (Ccodegen.global_label g.Cast.g_name) !cursor;
      cursor := Int64.add !cursor (Int64.of_int (8 * g.Cast.g_count)))
    prog.Cast.globals;
  (* generate code *)
  let tables = ref [] in
  let code_items =
    Runtime.all
    @ List.concat_map
        (fun f ->
          let items, tbls = Ccodegen.gen_func genv f in
          tables := !tables @ tbls;
          items)
        prog.Cast.funcs
  in
  (* table labels live in .rodata: assign offsets now *)
  let table_offsets = Hashtbl.create 8 in
  let ro_cursor = ref 0 in
  List.iter
    (fun (lbl, targets) ->
      Hashtbl.replace table_offsets lbl
        (Int64.add rodata_base (Int64.of_int !ro_cursor));
      ro_cursor := !ro_cursor + (8 * List.length targets))
    !tables;
  let symbols label =
    match Hashtbl.find_opt global_addrs label with
    | Some a -> Some a
    | None -> Hashtbl.find_opt table_offsets label
  in
  let asm = Asm.assemble ~base:text_base ~symbols code_items in
  (* build .rodata: jump-table entries are absolute code addresses *)
  let rodata = Bytes.make (max 8 !ro_cursor) '\000' in
  List.iter
    (fun (lbl, targets) ->
      let base =
        Int64.to_int (Int64.sub (Hashtbl.find table_offsets lbl) rodata_base)
      in
      List.iteri
        (fun k tgt ->
          match List.assoc_opt tgt asm.Asm.labels with
          | Some addr -> Bytes.set_int64_le rodata (base + (8 * k)) addr
          | None -> raise (Link_error ("jump-table target " ^ tgt ^ " undefined")))
        targets)
    !tables;
  (* symbols for functions and globals *)
  let fn_addrs =
    List.filter_map
      (fun (f : Cast.func) ->
        Option.map
          (fun a -> (f.Cast.fn_name, a))
          (List.assoc_opt f.Cast.fn_name asm.Asm.labels))
      prog.Cast.funcs
  in
  let runtime_syms =
    List.filter_map
      (fun name ->
        Option.map
          (fun a -> Elfkit.Types.symbol name a ~sym_section:".text")
          (List.assoc_opt name asm.Asm.labels))
      [ "_start"; "__clock_ns"; "__print_int"; "__print_char" ]
  in
  let elf_symbols =
    runtime_syms
    @ List.map
        (fun (name, addr) ->
          Elfkit.Types.symbol name addr ~sym_section:".text")
        fn_addrs
    @ List.filter_map
        (fun (g : Cast.global) ->
          Option.map
            (fun a ->
              Elfkit.Types.symbol g.Cast.g_name a
                ~sym_type:Elfkit.Types.stt_object ~sym_section:".data")
            (Hashtbl.find_opt global_addrs (Ccodegen.global_label g.Cast.g_name)))
        prog.Cast.globals
  in
  let attrs =
    Elfkit.Attributes.section_of
      { Elfkit.Attributes.empty with
        arch = Some arch_string;
        stack_align = Some 16 }
  in
  let sections =
    [
      Elfkit.Types.section ".text" asm.Asm.code ~s_addr:text_base
        ~s_flags:Elfkit.Types.(shf_alloc lor shf_execinstr) ~s_addralign:4;
      Elfkit.Types.section ".rodata" rodata ~s_addr:rodata_base
        ~s_flags:Elfkit.Types.shf_alloc ~s_addralign:8;
      Elfkit.Types.section ".data"
        (if Buffer.length data = 0 then Bytes.make 8 '\000'
         else Buffer.to_bytes data)
        ~s_addr:data_base
        ~s_flags:Elfkit.Types.(shf_alloc lor shf_write)
        ~s_addralign:8;
      attrs;
    ]
  in
  let image =
    Elfkit.Types.image ~machine:Elfkit.Types.em_riscv ~entry:text_base
      ~e_flags:Elfkit.Types.(ef_riscv_rvc lor ef_riscv_float_abi_double)
      ~symbols:elf_symbols sections
  in
  { image; fn_addrs }

(* compile and run directly in the simulator *)
let run ?(max_steps = 500_000_000) (source : string) =
  let c = compile source in
  let p = Rvsim.Loader.load c.image in
  Rvsim.Loader.run ~max_steps p
