lib/minicc/driver.mli: Elfkit Rvsim
