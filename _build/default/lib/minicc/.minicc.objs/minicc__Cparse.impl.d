lib/minicc/cparse.ml: Cast Format Int64 List String
