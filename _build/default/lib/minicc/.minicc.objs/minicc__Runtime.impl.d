lib/minicc/runtime.ml: Asm Build Insn Op Reg Riscv
