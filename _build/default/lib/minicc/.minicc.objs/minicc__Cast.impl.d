lib/minicc/cast.ml:
