lib/minicc/programs.ml: Printf
