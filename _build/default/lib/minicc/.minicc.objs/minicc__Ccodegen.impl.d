lib/minicc/ccodegen.ml: Array Asm Build Cast Dyn_util Format Hashtbl Insn Int64 List Op Option Printf Reg Riscv
