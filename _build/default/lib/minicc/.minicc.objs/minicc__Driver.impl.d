lib/minicc/driver.ml: Asm Buffer Bytes Cast Ccodegen Cparse Elfkit Hashtbl Int64 List Option Riscv Runtime Rvsim
