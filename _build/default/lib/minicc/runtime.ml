(* The minimal C runtime linked into every mini-C binary: _start, the
   clock_ns wrapper around clock_gettime, and decimal integer output. *)

open Riscv

let i x = Asm.Insn x

(* _start: call main, pass its return value to exit(2). *)
let crt0 =
  [
    Asm.Label "_start";
    Asm.Call_l "main";
    i (Build.addi Reg.a7 Reg.zero 93);
    i Build.ecall;
    Asm.Align 4;
  ]

(* long clock_ns(void): CLOCK_* 0 via clock_gettime, as ns *)
let clock_ns =
  [
    Asm.Label "__clock_ns";
    i (Build.addi Reg.sp Reg.sp (-32));
    i (Build.addi Reg.a0 Reg.zero 0);
    i (Build.mv Reg.a1 Reg.sp);
    i (Build.addi Reg.a7 Reg.zero 113);
    i Build.ecall;
    i (Build.ld Reg.t0 0 Reg.sp);
    i (Build.ld Reg.t1 8 Reg.sp);
    Asm.Li (Reg.t2, 1_000_000_000L);
    i (Build.mul Reg.t0 Reg.t0 Reg.t2);
    i (Build.add Reg.a0 Reg.t0 Reg.t1);
    i (Build.addi Reg.sp Reg.sp 32);
    i Build.ret;
    Asm.Align 4;
  ]

(* void print_int(long v): decimal + newline to stdout *)
let print_int =
  [
    Asm.Label "__print_int";
    i (Build.addi Reg.sp Reg.sp (-48));
    i (Build.sd Reg.ra 40 Reg.sp);
    (* newline goes at sp+32; digits grow downward from there *)
    i (Build.addi Reg.t0 Reg.sp 32);
    i (Build.addi Reg.t2 Reg.zero 10);
    i (Build.sb Reg.t2 0 Reg.t0) (* '\n' *);
    (* t3 = sign flag; a0 = |v| *)
    i (Build.addi Reg.t3 Reg.zero 0);
    Asm.Br (Op.BGE, Reg.a0, Reg.zero, "__pi_pos");
    i (Build.addi Reg.t3 Reg.zero 1);
    i (Build.neg Reg.a0 Reg.a0);
    Asm.Label "__pi_pos";
    i (Build.addi Reg.t1 Reg.zero 10);
    Asm.Label "__pi_digit";
    i (Insn.make ~rd:Reg.t2 ~rs1:Reg.a0 ~rs2:Reg.t1 Op.REMU);
    i (Build.addi Reg.t2 Reg.t2 48);
    i (Build.addi Reg.t0 Reg.t0 (-1));
    i (Build.sb Reg.t2 0 Reg.t0);
    i (Insn.make ~rd:Reg.a0 ~rs1:Reg.a0 ~rs2:Reg.t1 Op.DIVU);
    Asm.Br (Op.BNE, Reg.a0, Reg.zero, "__pi_digit");
    Asm.Br (Op.BEQ, Reg.t3, Reg.zero, "__pi_nosign");
    i (Build.addi Reg.t0 Reg.t0 (-1));
    i (Build.addi Reg.t2 Reg.zero 45) (* '-' *);
    i (Build.sb Reg.t2 0 Reg.t0);
    Asm.Label "__pi_nosign";
    (* write(1, t0, sp+33 - t0) *)
    i (Build.addi Reg.a2 Reg.sp 33);
    i (Build.sub Reg.a2 Reg.a2 Reg.t0);
    i (Build.mv Reg.a1 Reg.t0);
    i (Build.addi Reg.a0 Reg.zero 1);
    i (Build.addi Reg.a7 Reg.zero 64);
    i Build.ecall;
    i (Build.ld Reg.ra 40 Reg.sp);
    i (Build.addi Reg.sp Reg.sp 48);
    i Build.ret;
    Asm.Align 4;
  ]

(* void print_char(long c) *)
let print_char =
  [
    Asm.Label "__print_char";
    i (Build.addi Reg.sp Reg.sp (-16));
    i (Build.sb Reg.a0 0 Reg.sp);
    i (Build.mv Reg.a1 Reg.sp);
    i (Build.addi Reg.a0 Reg.zero 1);
    i (Build.addi Reg.a2 Reg.zero 1);
    i (Build.addi Reg.a7 Reg.zero 64);
    i Build.ecall;
    i (Build.addi Reg.sp Reg.sp 16);
    i Build.ret;
    Asm.Align 4;
  ]

let all = crt0 @ clock_ns @ print_int @ print_char
