(* mini-C code generator: AST -> RV64 assembler items.

   Deliberately a straightforward non-optimizing compiler in the style of
   `gcc -O0`-ish output, because its job is to produce *realistic
   mutatees*: stack frames, saved ra, loops with compare-and-branch
   blocks, calls, tail positions, and switch statements lowered to real
   jump tables (absolute 8-byte entries in .rodata) for ParseAPI's
   jump-table analysis to chew on. *)

open Riscv
open Cast

exception Codegen_error of string

let fail fmt = Format.kasprintf (fun s -> raise (Codegen_error s)) fmt

(* temp register pools *)
let ti = [| Reg.t0; Reg.t1; Reg.t2; Reg.t3; Reg.t4; Reg.t5; Reg.t6 |]
let tf = [| Reg.f 0; Reg.f 1; Reg.f 2; Reg.f 3; Reg.f 4; Reg.f 5; Reg.f 6; Reg.f 7 |]

let int_temp d = if d < Array.length ti then ti.(d) else fail "int expression too deep"
let fp_temp d = if d < Array.length tf then tf.(d) else fail "fp expression too deep"

type ginfo = { gi_label : string; gi_ty : ty; gi_count : int }

type genv = {
  g_globals : (string, ginfo) Hashtbl.t;
  g_funcs : (string, Cast.func) Hashtbl.t;
}

type fenv = {
  genv : genv;
  locals : (string, int * ty) Hashtbl.t; (* sp offset, type *)
  frame : int;
  epilogue : string;
  fn : Cast.func;
  mutable label_id : int;
  mutable tables : (string * string list) list; (* jump tables: label, targets *)
  mutable sp_adjust : int;
      (* bytes currently pushed below the frame (argument staging, temp
         saves); added to every sp-relative local access so nested
         evaluation sees correct slots *)
}

let fresh fe tag =
  fe.label_id <- fe.label_id + 1;
  Printf.sprintf ".L%s_%s%d" fe.fn.fn_name tag fe.label_id

let global_label name = "g_" ^ name

(* builtins and their result types *)
let builtin_ret = function
  | "clock_ns" -> Some Tint
  | "print_int" | "print_char" | "exit" -> Some Tvoid
  | _ -> None

let rec ty_of fe (e : expr) : ty =
  match e with
  | Eint _ -> Tint
  | Efloat _ -> Tdouble
  | Evar x -> (
      match Hashtbl.find_opt fe.locals x with
      | Some (_, t) -> t
      | None -> (
          match Hashtbl.find_opt fe.genv.g_globals x with
          | Some g -> g.gi_ty
          | None -> fail "%s: unknown variable %s" fe.fn.fn_name x))
  | Eindex (a, _) -> (
      match Hashtbl.find_opt fe.genv.g_globals a with
      | Some g -> g.gi_ty
      | None -> fail "%s: unknown array %s" fe.fn.fn_name a)
  | Ecall (f, _) -> (
      match builtin_ret f with
      | Some t -> t
      | None -> (
          match Hashtbl.find_opt fe.genv.g_funcs f with
          | Some fn -> fn.fn_ret
          | None -> fail "%s: unknown function %s" fe.fn.fn_name f))
  | Ebin ((Lt | Le | Gt | Ge | Eq | Ne | And | Or), _, _) -> Tint
  | Ebin (_, a, b) ->
      if ty_of fe a = Tdouble || ty_of fe b = Tdouble then Tdouble else Tint
  | Eneg e -> ty_of fe e
  | Enot _ -> Tint

let i x = Asm.Insn x

(* --- integer expressions --------------------------------------------------- *)

(* evaluate [e] (must be int-typed unless coercing) into int_temp d *)
let rec gen_i fe d (e : expr) : Asm.item list =
  let dst = int_temp d in
  match e with
  | Eint v -> [ Asm.Li (dst, v) ]
  | Efloat _ -> fail "%s: float literal in int context" fe.fn.fn_name
  | Evar x -> (
      match Hashtbl.find_opt fe.locals x with
      | Some (off, Tint) -> [ i (Build.ld dst (off + fe.sp_adjust) Reg.sp) ]
      | Some (_, _) -> gen_coerce_d_to_i fe d e
      | None -> (
          match Hashtbl.find_opt fe.genv.g_globals x with
          | Some { gi_label; gi_ty = Tint; _ } ->
              [ Asm.La (dst, gi_label); i (Build.ld dst 0 dst) ]
          | Some _ -> gen_coerce_d_to_i fe d e
          | None -> fail "%s: unknown variable %s" fe.fn.fn_name x))
  | Eindex (a, idx) -> (
      match Hashtbl.find_opt fe.genv.g_globals a with
      | Some { gi_label; gi_ty = Tint; _ } ->
          gen_i fe d idx
          @ [
              i (Build.slli dst dst 3);
              Asm.La (int_temp (d + 1), gi_label);
              i (Build.add dst dst (int_temp (d + 1)));
              i (Build.ld dst 0 dst);
            ]
      | Some _ -> gen_coerce_d_to_i fe d e
      | None -> fail "%s: unknown array %s" fe.fn.fn_name a)
  | Ecall _ when ty_of fe e = Tdouble -> gen_coerce_d_to_i fe d e
  | Ecall (f, args) -> gen_call fe ~d ~fd:0 f args @ [ i (Build.mv dst Reg.a0) ]
  | Eneg e ->
      if ty_of fe e = Tdouble then gen_coerce_d_to_i fe d (Eneg e)
      else gen_i fe d e @ [ i (Build.neg dst dst) ]
  | Enot e -> gen_i fe d e @ [ i (Build.seqz dst dst) ]
  | Ebin (And, a, b) ->
      (* short-circuit: dst = a ? (b != 0) : 0 *)
      let l_false = fresh fe "and_f" and l_end = fresh fe "and_e" in
      gen_i fe d a
      @ [ Asm.Br (Op.BEQ, dst, Reg.zero, l_false) ]
      @ gen_i fe d b
      @ [ i (Build.snez dst dst); Asm.J l_end; Asm.Label l_false;
          i (Build.mv dst Reg.zero); Asm.Label l_end ]
  | Ebin (Or, a, b) ->
      let l_true = fresh fe "or_t" and l_end = fresh fe "or_e" in
      gen_i fe d a
      @ [ Asm.Br (Op.BNE, dst, Reg.zero, l_true) ]
      @ gen_i fe d b
      @ [ i (Build.snez dst dst); Asm.J l_end; Asm.Label l_true;
          i (Build.addi dst Reg.zero 1); Asm.Label l_end ]
  | Ebin (op, a, b)
    when (ty_of fe a = Tdouble || ty_of fe b = Tdouble)
         && List.mem op [ Lt; Le; Gt; Ge; Eq; Ne ] ->
      (* double comparison produces an int *)
      let fa = fp_temp 0 and fb = fp_temp 1 in
      gen_d fe 0 d a
      @ gen_d fe 1 d b
      @ (match op with
        | Lt -> [ i (Build.flt_d dst fa fb) ]
        | Gt -> [ i (Build.flt_d dst fb fa) ]
        | Le -> [ i (Build.fle_d dst fa fb) ]
        | Ge -> [ i (Build.fle_d dst fb fa) ]
        | Eq -> [ i (Build.feq_d dst fa fb) ]
        | Ne -> [ i (Build.feq_d dst fa fb); i (Build.seqz dst dst) ]
        | _ -> assert false)
  | Ebin (op, a, b) when ty_of fe e = Tdouble -> gen_coerce_d_to_i fe d (Ebin (op, a, b))
  | Ebin (op, a, b) ->
      let ra = dst and rb = int_temp (d + 1) in
      gen_i fe d a @ gen_i fe (d + 1) b
      @ (match op with
        | Add -> [ i (Build.add ra ra rb) ]
        | Sub -> [ i (Build.sub ra ra rb) ]
        | Mul -> [ i (Build.mul ra ra rb) ]
        | Div -> [ i (Build.div ra ra rb) ]
        | Mod -> [ i (Build.rem ra ra rb) ]
        | Band -> [ i (Build.and_ ra ra rb) ]
        | Bor -> [ i (Build.or_ ra ra rb) ]
        | Bxor -> [ i (Build.xor ra ra rb) ]
        | Shl -> [ i (Build.sll ra ra rb) ]
        | Shr -> [ i (Build.sra ra ra rb) ]
        | Lt -> [ i (Build.slt ra ra rb) ]
        | Gt -> [ i (Build.slt ra rb ra) ]
        | Le -> [ i (Build.slt ra rb ra); i (Build.xori ra ra 1) ]
        | Ge -> [ i (Build.slt ra ra rb); i (Build.xori ra ra 1) ]
        | Eq -> [ i (Build.sub ra ra rb); i (Build.seqz ra ra) ]
        | Ne -> [ i (Build.sub ra ra rb); i (Build.snez ra ra) ]
        | And | Or -> assert false)

and gen_coerce_d_to_i fe d e =
  (* evaluate as double, truncate toward zero (C semantics) *)
  gen_d fe 0 d e @ [ i (Build.fcvt_l_d (int_temp d) (fp_temp 0)) ]

(* --- double expressions ------------------------------------------------------ *)

(* evaluate [e] into fp_temp fd; [d] = first free int temp for leaves *)
and gen_d fe fd d (e : expr) : Asm.item list =
  let dst = fp_temp fd in
  match e with
  | Efloat f ->
      [ Asm.Li (int_temp d, Int64.bits_of_float f);
        i (Build.fmv_d_x dst (int_temp d)) ]
  | Eint v ->
      [ Asm.Li (int_temp d, v); i (Build.fcvt_d_l dst (int_temp d)) ]
  | Evar x -> (
      match Hashtbl.find_opt fe.locals x with
      | Some (off, Tdouble) -> [ i (Build.fld dst (off + fe.sp_adjust) Reg.sp) ]
      | Some (_, Tint) -> gen_i fe d e @ [ i (Build.fcvt_d_l dst (int_temp d)) ]
      | Some (_, Tvoid) -> fail "void variable"
      | None -> (
          match Hashtbl.find_opt fe.genv.g_globals x with
          | Some { gi_label; gi_ty = Tdouble; _ } ->
              [ Asm.La (int_temp d, gi_label); i (Build.fld dst 0 (int_temp d)) ]
          | Some { gi_ty = Tint; _ } ->
              gen_i fe d e @ [ i (Build.fcvt_d_l dst (int_temp d)) ]
          | _ -> fail "%s: unknown variable %s" fe.fn.fn_name x))
  | Eindex (a, idx) -> (
      match Hashtbl.find_opt fe.genv.g_globals a with
      | Some { gi_label; gi_ty = Tdouble; _ } ->
          gen_i fe d idx
          @ [
              i (Build.slli (int_temp d) (int_temp d) 3);
              Asm.La (int_temp (d + 1), gi_label);
              i (Build.add (int_temp d) (int_temp d) (int_temp (d + 1)));
              i (Build.fld dst 0 (int_temp d));
            ]
      | Some { gi_ty = Tint; _ } ->
          gen_i fe d e @ [ i (Build.fcvt_d_l dst (int_temp d)) ]
      | _ -> fail "%s: unknown array %s" fe.fn.fn_name a)
  | Ecall (f, args) when ty_of fe e = Tdouble ->
      gen_call fe ~d ~fd f args @ [ i (Build.fmv_d dst (Reg.f 10)) ]
  | Ecall _ -> gen_i fe d e @ [ i (Build.fcvt_d_l dst (int_temp d)) ]
  | Eneg e when ty_of fe e = Tdouble ->
      gen_d fe fd d e
      @ [ i (Insn.make ~rd:(Reg.fp_index dst) ~rs1:(Reg.fp_index dst)
               ~rs2:(Reg.fp_index dst) Op.FSGNJN_D) ]
  | Eneg _ | Enot _ -> gen_i fe d e @ [ i (Build.fcvt_d_l dst (int_temp d)) ]
  | Ebin (op, a, b) when List.mem op [ Add; Sub; Mul; Div ] ->
      let fa = dst and fb = fp_temp (fd + 1) in
      gen_d fe fd d a @ gen_d fe (fd + 1) d b
      @ (match op with
        | Add -> [ i (Build.fadd_d fa fa fb) ]
        | Sub -> [ i (Build.fsub_d fa fa fb) ]
        | Mul -> [ i (Build.fmul_d fa fa fb) ]
        | Div -> [ i (Build.fdiv_d fa fa fb) ]
        | _ -> assert false)
  | Ebin _ -> gen_i fe d e @ [ i (Build.fcvt_d_l dst (int_temp d)) ]

(* --- calls -------------------------------------------------------------------- *)

(* leaves the integer result in a0 / double result in fa0 *)
and gen_call fe ~d ~fd (f : string) (args : expr list) : Asm.item list =
  match (f, args) with
  | "exit", [ code ] ->
      gen_i fe d code
      @ [ i (Build.mv Reg.a0 (int_temp d)); i (Build.addi Reg.a7 Reg.zero 93);
          i Build.ecall ]
  | "clock_ns", [] -> [ Asm.Call_l "__clock_ns" ]
  | "print_int", [ e ] ->
      (* NB: sequencing matters — gen_save_temps mutates sp_adjust, which
         the argument evaluation must observe *)
      let saves = gen_save_temps fe ~d ~fd in
      let arg = gen_i fe d e in
      let restores = gen_restore_temps fe ~d ~fd in
      saves @ arg
      @ [ i (Build.mv Reg.a0 (int_temp d)); Asm.Call_l "__print_int" ]
      @ restores
  | "print_char", [ e ] ->
      let saves = gen_save_temps fe ~d ~fd in
      let arg = gen_i fe d e in
      let restores = gen_restore_temps fe ~d ~fd in
      saves @ arg
      @ [ i (Build.mv Reg.a0 (int_temp d)); Asm.Call_l "__print_char" ]
      @ restores
  | _ -> (
      match Hashtbl.find_opt fe.genv.g_funcs f with
      | None -> fail "%s: call to unknown function %s" fe.fn.fn_name f
      | Some callee ->
          let params = callee.fn_params in
          if List.length params <> List.length args then
            fail "%s: %s expects %d arguments" fe.fn.fn_name f (List.length params);
          let n = List.length args in
          (* sequencing matters: saves first (mutates sp_adjust), then
             argument pushes (each also bumps sp_adjust) *)
          let saves = gen_save_temps fe ~d ~fd in
          (* evaluate args left to right onto the stack, then pop them
             into argument registers *)
          let pushes =
            List.concat
              (List.map2
                 (fun (p : param) a ->
                   let items =
                     match p.p_ty with
                     | Tdouble ->
                         gen_d fe fd d a
                         @ [ i (Build.addi Reg.sp Reg.sp (-8));
                             i (Build.fsd (fp_temp fd) 0 Reg.sp) ]
                     | _ ->
                         gen_i fe d a
                         @ [ i (Build.addi Reg.sp Reg.sp (-8));
                             i (Build.sd (int_temp d) 0 Reg.sp) ]
                   in
                   fe.sp_adjust <- fe.sp_adjust + 8;
                   items)
                 params args)
          in
          fe.sp_adjust <- fe.sp_adjust - (8 * n);
          let pops =
            (* k-th arg sits at sp + 8*(n-1-k) *)
            List.concat
              (List.mapi
                 (fun k (p : param) ->
                   let off = 8 * (n - 1 - k) in
                   let int_idx =
                     List.filteri (fun j _ -> j < k) params
                     |> List.filter (fun (q : param) -> q.p_ty <> Tdouble)
                     |> List.length
                   in
                   let fp_idx =
                     List.filteri (fun j _ -> j < k) params
                     |> List.filter (fun (q : param) -> q.p_ty = Tdouble)
                     |> List.length
                   in
                   match p.p_ty with
                   | Tdouble -> [ i (Build.fld (Reg.f (10 + fp_idx)) off Reg.sp) ]
                   | _ -> [ i (Build.ld (Reg.x (10 + int_idx)) off Reg.sp) ])
                 params)
            @ [ i (Build.addi Reg.sp Reg.sp (8 * n)) ]
          in
          let restores = gen_restore_temps fe ~d ~fd in
          saves @ pushes @ pops @ [ Asm.Call_l f ] @ restores)

(* temps below depth [d]/[fd] are live across the call: save them *)
and gen_save_temps fe ~d ~fd : Asm.item list =
  let n = d + fd in
  if n = 0 then []
  else begin
    fe.sp_adjust <- fe.sp_adjust + (8 * n);
    i (Build.addi Reg.sp Reg.sp (-8 * n))
    :: (List.init d (fun k -> i (Build.sd ti.(k) (8 * k) Reg.sp))
       @ List.init fd (fun k -> i (Build.fsd tf.(k) (8 * (d + k)) Reg.sp)))
  end

and gen_restore_temps fe ~d ~fd : Asm.item list =
  let n = d + fd in
  if n = 0 then []
  else begin
    fe.sp_adjust <- fe.sp_adjust - (8 * n);
    List.init d (fun k -> i (Build.ld ti.(k) (8 * k) Reg.sp))
    @ List.init fd (fun k -> i (Build.fld tf.(k) (8 * (d + k)) Reg.sp))
    @ [ i (Build.addi Reg.sp Reg.sp (8 * n)) ]
  end

(* --- statements ---------------------------------------------------------------- *)

let store_local fe (x : string) (vty : ty) : Asm.item list =
  (* value in t0 (int) or ft0 (double); vty = value's type *)
  match Hashtbl.find_opt fe.locals x with
  | Some (off, Tint) ->
      (if vty = Tdouble then [ i (Build.fcvt_l_d Reg.t0 (Reg.f 0)) ] else [])
      @ [ i (Build.sd Reg.t0 (off + fe.sp_adjust) Reg.sp) ]
  | Some (off, Tdouble) ->
      (if vty <> Tdouble then [ i (Build.fcvt_d_l (Reg.f 0) Reg.t0) ] else [])
      @ [ i (Build.fsd (Reg.f 0) (off + fe.sp_adjust) Reg.sp) ]
  | Some (_, Tvoid) -> fail "void local"
  | None -> (
      match Hashtbl.find_opt fe.genv.g_globals x with
      | Some { gi_label; gi_ty = Tint; _ } ->
          (if vty = Tdouble then [ i (Build.fcvt_l_d Reg.t0 (Reg.f 0)) ] else [])
          @ [ Asm.La (Reg.t1, gi_label); i (Build.sd Reg.t0 0 Reg.t1) ]
      | Some { gi_label; gi_ty = Tdouble; _ } ->
          (if vty <> Tdouble then [ i (Build.fcvt_d_l (Reg.f 0) Reg.t0) ] else [])
          @ [ Asm.La (Reg.t1, gi_label); i (Build.fsd (Reg.f 0) 0 Reg.t1) ]
      | _ -> fail "%s: unknown variable %s" fe.fn.fn_name x)

let gen_value fe (e : expr) : Asm.item list * ty =
  match ty_of fe e with
  | Tdouble -> (gen_d fe 0 0 e, Tdouble)
  | _ -> (gen_i fe 0 e, Tint)

let rec gen_stmt fe ~(brk : string option) (s : stmt) : Asm.item list =
  match s with
  | Sdecl (_, x, None) ->
      ignore x;
      []
  | Sdecl (_, x, Some e) | Sassign (x, e) ->
      let items, vty = gen_value fe e in
      items @ store_local fe x vty
  | Sstore (a, idx, v) -> (
      match Hashtbl.find_opt fe.genv.g_globals a with
      | Some { gi_label; gi_ty; _ } ->
          (* index in t2, element address in t2 *)
          let addr_items =
            gen_i fe 2 idx
            @ [
                i (Build.slli Reg.t2 Reg.t2 3);
                Asm.La (Reg.t3, gi_label);
                i (Build.add Reg.t2 Reg.t2 Reg.t3);
              ]
          in
          let value_items, vty = gen_value fe v in
          (match (gi_ty, vty) with
          | Tint, Tint -> value_items @ addr_items @ [ i (Build.sd Reg.t0 0 Reg.t2) ]
          | Tint, _ ->
              value_items
              @ [ i (Build.fcvt_l_d Reg.t0 (Reg.f 0)) ]
              @ addr_items
              @ [ i (Build.sd Reg.t0 0 Reg.t2) ]
          | Tdouble, Tdouble ->
              value_items @ addr_items @ [ i (Build.fsd (Reg.f 0) 0 Reg.t2) ]
          | Tdouble, _ ->
              value_items
              @ [ i (Build.fcvt_d_l (Reg.f 0) Reg.t0) ]
              @ addr_items
              @ [ i (Build.fsd (Reg.f 0) 0 Reg.t2) ]
          | Tvoid, _ -> fail "void array")
      | None -> fail "%s: unknown array %s" fe.fn.fn_name a)
  | Sif (c, then_b, else_b) ->
      let l_else = fresh fe "else" and l_end = fresh fe "endif" in
      gen_i fe 0 c
      @ [ Asm.Br (Op.BEQ, Reg.t0, Reg.zero, l_else) ]
      @ List.concat_map (gen_stmt fe ~brk) then_b
      @ [ Asm.J l_end; Asm.Label l_else ]
      @ List.concat_map (gen_stmt fe ~brk) else_b
      @ [ Asm.Label l_end ]
  | Swhile (c, body) ->
      let l_head = fresh fe "while" and l_end = fresh fe "endwhile" in
      [ Asm.Label l_head ]
      @ gen_i fe 0 c
      @ [ Asm.Br (Op.BEQ, Reg.t0, Reg.zero, l_end) ]
      @ List.concat_map (gen_stmt fe ~brk:(Some l_end)) body
      @ [ Asm.J l_head; Asm.Label l_end ]
  | Sfor (init, cond, step, body) ->
      let l_head = fresh fe "for" and l_end = fresh fe "endfor" in
      (match init with Some s -> gen_stmt fe ~brk s | None -> [])
      @ [ Asm.Label l_head ]
      @ (match cond with
        | Some c ->
            gen_i fe 0 c @ [ Asm.Br (Op.BEQ, Reg.t0, Reg.zero, l_end) ]
        | None -> [])
      @ List.concat_map (gen_stmt fe ~brk:(Some l_end)) body
      @ (match step with Some s -> gen_stmt fe ~brk s | None -> [])
      @ [ Asm.J l_head; Asm.Label l_end ]
  | Sswitch (e, cases, dflt) -> gen_switch fe ~brk e cases dflt
  | Sreturn None -> [ Asm.J fe.epilogue ]
  | Sreturn (Some e) ->
      let items, vty = gen_value fe e in
      items
      @ (match (fe.fn.fn_ret, vty) with
        | Tdouble, Tdouble -> [ i (Build.fmv_d (Reg.f 10) (Reg.f 0)) ]
        | Tdouble, _ -> [ i (Build.fcvt_d_l (Reg.f 10) Reg.t0) ]
        | _, Tdouble -> [ i (Build.fcvt_l_d Reg.a0 (Reg.f 0)) ]
        | _, _ -> [ i (Build.mv Reg.a0 Reg.t0) ])
      @ [ Asm.J fe.epilogue ]
  | Sbreak -> (
      match brk with
      | Some l -> [ Asm.J l ]
      | None -> fail "%s: break outside loop/switch" fe.fn.fn_name)
  | Sexpr (Ecall (f, args)) -> gen_call fe ~d:0 ~fd:0 f args
  | Sexpr e -> gen_i fe 0 e
  | Sblock body -> List.concat_map (gen_stmt fe ~brk) body

(* switch lowering: dense value sets become a jump table (so ParseAPI has
   real tables to analyze), sparse ones an if-chain *)
and gen_switch fe ~brk:_ e cases dflt : Asm.item list =
  let l_end = fresh fe "endswitch" in
  let l_dflt = fresh fe "default" in
  let case_labels = List.map (fun (v, _) -> (v, fresh fe "case")) cases in
  let bodies =
    List.concat_map
      (fun ((_, body), (_, lbl)) ->
        [ Asm.Label lbl ] @ List.concat_map (gen_stmt fe ~brk:(Some l_end)) body)
      (List.combine cases case_labels)
    @ [ Asm.Label l_dflt ]
    @ List.concat_map (gen_stmt fe ~brk:(Some l_end)) dflt
    @ [ Asm.Label l_end ]
  in
  let values = List.map fst cases in
  let minv = List.fold_left min Int64.max_int values in
  let maxv = List.fold_left max Int64.min_int values in
  let span = Int64.to_int (Int64.sub maxv minv) + 1 in
  let dispatch =
    if List.length cases >= 3 && span <= 3 * List.length cases && span <= 1024
       && Int64.compare minv 0L >= 0
    then begin
      (* jump table over [minv, maxv] *)
      let tbl = fresh fe "table" in
      let targets =
        List.init span (fun k ->
            let v = Int64.add minv (Int64.of_int k) in
            match List.assoc_opt v case_labels with
            | Some l -> l
            | None -> l_dflt)
      in
      fe.tables <- (tbl, targets) :: fe.tables;
      gen_i fe 0 e
      @ (if Int64.equal minv 0L then []
         else [ i (Build.addi Reg.t0 Reg.t0 (Int64.to_int (Int64.neg minv))) ])
      @ [
          Asm.Li (Reg.t1, Int64.of_int span);
          Asm.Br (Op.BGEU, Reg.t0, Reg.t1, l_dflt);
          Asm.La (Reg.t1, tbl);
          i (Build.slli Reg.t2 Reg.t0 3);
          i (Build.add Reg.t1 Reg.t1 Reg.t2);
          i (Build.ld Reg.t3 0 Reg.t1);
          i (Build.jr Reg.t3);
        ]
    end
    else
      (* if-chain *)
      gen_i fe 0 e
      @ List.concat_map
          (fun (v, lbl) ->
            [ Asm.Li (Reg.t1, v); Asm.Br (Op.BEQ, Reg.t0, Reg.t1, lbl) ])
          case_labels
      @ [ Asm.J l_dflt ]
  in
  dispatch @ bodies

(* --- functions ------------------------------------------------------------------ *)

let collect_locals (fn : Cast.func) : (string * ty) list =
  let acc = ref [] in
  let add name ty = if not (List.mem_assoc name !acc) then acc := (name, ty) :: !acc in
  List.iter (fun (p : param) -> add p.p_name p.p_ty) fn.fn_params;
  let rec walk s =
    match s with
    | Sdecl (ty, name, _) -> add name ty
    | Sif (_, a, b) ->
        List.iter walk a;
        List.iter walk b
    | Swhile (_, b) -> List.iter walk b
    | Sfor (init, _, step, b) ->
        Option.iter walk init;
        Option.iter walk step;
        List.iter walk b
    | Sswitch (_, cases, dflt) ->
        List.iter (fun (_, b) -> List.iter walk b) cases;
        List.iter walk dflt
    | Sblock b -> List.iter walk b
    | Sassign _ | Sstore _ | Sreturn _ | Sbreak | Sexpr _ -> ()
  in
  List.iter walk fn.fn_body;
  List.rev !acc

let gen_func (genv : genv) (fn : Cast.func) :
    Asm.item list * (string * string list) list =
  let locals_list = collect_locals fn in
  let locals = Hashtbl.create 16 in
  List.iteri (fun k (name, ty) -> Hashtbl.replace locals name (8 * k, ty)) locals_list;
  let n_locals = List.length locals_list in
  (* frame: locals + ra slot, 16-aligned *)
  let frame =
    Int64.to_int (Dyn_util.Bits.align_up (Int64.of_int ((8 * n_locals) + 8)) 16)
  in
  let epilogue = Printf.sprintf ".L%s_ret" fn.fn_name in
  let fe =
    { genv; locals; frame; epilogue; fn; label_id = 0; tables = [];
      sp_adjust = 0 }
  in
  let prologue =
    [ Asm.Label fn.fn_name;
      i (Build.addi Reg.sp Reg.sp (-frame));
      i (Build.sd Reg.ra (frame - 8) Reg.sp) ]
  in
  (* spill incoming arguments to their local slots *)
  let int_seen = ref 0 and fp_seen = ref 0 in
  let arg_spills =
    List.concat_map
      (fun (p : param) ->
        let off, _ = Hashtbl.find locals p.p_name in
        match p.p_ty with
        | Tdouble ->
            let k = !fp_seen in
            incr fp_seen;
            [ i (Build.fsd (Reg.f (10 + k)) off Reg.sp) ]
        | _ ->
            let k = !int_seen in
            incr int_seen;
            [ i (Build.sd (Reg.x (10 + k)) off Reg.sp) ])
      fn.fn_params
  in
  let body = List.concat_map (gen_stmt fe ~brk:None) fn.fn_body in
  let epilogue_items =
    [ Asm.Label epilogue;
      i (Build.ld Reg.ra (frame - 8) Reg.sp);
      i (Build.addi Reg.sp Reg.sp frame);
      i Build.ret ]
  in
  (prologue @ arg_spills @ body @ epilogue_items @ [ Asm.Align 4 ], fe.tables)
