lib/proccontrol/proccontrol.mli: Bytes Elfkit Riscv Rvsim
