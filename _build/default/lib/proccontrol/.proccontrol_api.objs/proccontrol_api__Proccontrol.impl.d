lib/proccontrol/proccontrol.ml: Bytes Decode Elfkit Hashtbl Insn Int64 List Op Reg Riscv Rvsim
