(* A decoded RISC-V instruction.

   Register fields hold raw 5-bit indices (0..31); whether a field names
   an integer or FP register is a property of the opcode (see
   [Op.rd_is_fp] etc.).  Compressed instructions are expanded to their
   base opcode with [len = 2]. *)

type t = {
  op : Op.t;
  rd : int;
  rs1 : int;
  rs2 : int;
  rs3 : int;
  imm : int64; (* sign-extended immediate / branch offset / shamt *)
  csr : int; (* CSR address for Zicsr ops *)
  rm : int; (* FP rounding-mode field *)
  aq : bool; (* atomics *)
  rl : bool;
  len : int; (* 2 (compressed encoding) or 4 *)
  raw : int; (* raw encoding bits (16 or 32) *)
}

let make ?(rd = 0) ?(rs1 = 0) ?(rs2 = 0) ?(rs3 = 0) ?(imm = 0L) ?(csr = 0)
    ?(rm = 7) ?(aq = false) ?(rl = false) ?(len = 4) ?(raw = 0) op =
  { op; rd; rs1; rs2; rs3; imm; csr; rm; aq; rl; len; raw }

let imm_int i = Int64.to_int i.imm

(* Registers written by the instruction, as flat [Reg.t] ids.  Writes to
   x0 are discarded (x0 is hard-wired to zero). *)
let defs i =
  let rd =
    if Op.rd_is_fp i.op then [ Reg.f i.rd ]
    else if i.rd <> 0 then [ Reg.x i.rd ]
    else []
  in
  let rd =
    match i.op with
    | Op.SB | Op.SH | Op.SW | Op.SD | Op.FSW | Op.FSD
    | Op.BEQ | Op.BNE | Op.BLT | Op.BGE | Op.BLTU | Op.BGEU
    | Op.FENCE | Op.FENCE_I | Op.ECALL | Op.EBREAK -> []
    | _ -> rd
  in
  if Op.writes_fcsr i.op then Reg.fcsr :: rd else rd

(* Registers read by the instruction. *)
let uses i =
  let use_rs1 =
    match i.op with
    | Op.LUI | Op.AUIPC | Op.JAL | Op.ECALL | Op.EBREAK | Op.FENCE
    | Op.FENCE_I | Op.CSRRWI | Op.CSRRSI | Op.CSRRCI -> []
    | op when Op.rs1_is_fp op -> [ Reg.f i.rs1 ]
    | _ -> if i.rs1 = 0 then [] else [ Reg.x i.rs1 ]
  in
  let use_rs2 =
    match Op.encoding i.op with
    | Op.R _ | Op.R_rm _ | Op.R4 _ | Op.S _ | Op.B _ | Op.A _ ->
        if Op.rs2_is_fp i.op then [ Reg.f i.rs2 ]
        else if i.rs2 = 0 then []
        else [ Reg.x i.rs2 ]
    | Op.R_rs2 _ | Op.R_rm_rs2 _ | Op.I _ | Op.Sh _ | Op.Sh5 _ | Op.U _
    | Op.J _ | Op.Fence | Op.Fixed _ | Op.Csr _ | Op.Csri _ -> []
  in
  let use_rs2 =
    (* LR has no rs2 even though the A format carries the field. *)
    match i.op with Op.LR_W | Op.LR_D -> [] | _ -> use_rs2
  in
  let use_rs3 = if Op.has_rs3 i.op then [ Reg.f i.rs3 ] else [] in
  use_rs1 @ use_rs2 @ use_rs3

(* Branch / jump target for direct control transfers at address [addr]. *)
let target ~addr i =
  match i.op with
  | Op.JAL -> Some (Int64.add addr i.imm)
  | Op.BEQ | Op.BNE | Op.BLT | Op.BGE | Op.BLTU | Op.BGEU ->
      Some (Int64.add addr i.imm)
  | _ -> None

(* Address the instruction falls through to. *)
let next ~addr i = Int64.add addr (Int64.of_int i.len)

(* Standard-return idiom: jalr x0, 0(ra) (c.ret).  The real return
   classification in ParseAPI is contextual; this is the fast path. *)
let is_ret i = i.op = Op.JALR && i.rd = 0 && i.rs1 = Reg.ra && i.imm = 0L

let pp_operands fmt i =
  let ir n = Reg.name (Reg.x n) and fr n = Reg.name (Reg.f n) in
  let p = Format.fprintf in
  match Op.encoding i.op with
  | Op.R _ ->
      let r k n = if k then fr n else ir n in
      p fmt "%s, %s, %s"
        (r (Op.rd_is_fp i.op) i.rd)
        (r (Op.rs1_is_fp i.op) i.rs1)
        (r (Op.rs2_is_fp i.op) i.rs2)
  | Op.R_rs2 _ ->
      let r k n = if k then fr n else ir n in
      p fmt "%s, %s" (r (Op.rd_is_fp i.op) i.rd) (r (Op.rs1_is_fp i.op) i.rs1)
  | Op.R_rm _ ->
      let r k n = if k then fr n else ir n in
      p fmt "%s, %s, %s"
        (r (Op.rd_is_fp i.op) i.rd)
        (r (Op.rs1_is_fp i.op) i.rs1)
        (r (Op.rs2_is_fp i.op) i.rs2)
  | Op.R_rm_rs2 _ ->
      let r k n = if k then fr n else ir n in
      p fmt "%s, %s" (r (Op.rd_is_fp i.op) i.rd) (r (Op.rs1_is_fp i.op) i.rs1)
  | Op.R4 _ -> p fmt "%s, %s, %s, %s" (fr i.rd) (fr i.rs1) (fr i.rs2) (fr i.rs3)
  | Op.A _ ->
      if i.op = Op.LR_W || i.op = Op.LR_D then
        p fmt "%s, (%s)" (ir i.rd) (ir i.rs1)
      else p fmt "%s, %s, (%s)" (ir i.rd) (ir i.rs2) (ir i.rs1)
  | Op.I _ ->
      if Op.is_load i.op then
        p fmt "%s, %Ld(%s)"
          (if Op.rd_is_fp i.op then fr i.rd else ir i.rd)
          i.imm (ir i.rs1)
      else if i.op = Op.JALR then p fmt "%s, %Ld(%s)" (ir i.rd) i.imm (ir i.rs1)
      else p fmt "%s, %s, %Ld" (ir i.rd) (ir i.rs1) i.imm
  | Op.Sh _ | Op.Sh5 _ -> p fmt "%s, %s, %Ld" (ir i.rd) (ir i.rs1) i.imm
  | Op.S _ ->
      p fmt "%s, %Ld(%s)"
        (if Op.rs2_is_fp i.op then fr i.rs2 else ir i.rs2)
        i.imm (ir i.rs1)
  | Op.B _ -> p fmt "%s, %s, %Ld" (ir i.rs1) (ir i.rs2) i.imm
  | Op.U _ -> p fmt "%s, 0x%Lx" (ir i.rd) (Int64.shift_right_logical (Int64.logand i.imm 0xFFFFF000L) 12)
  | Op.J _ -> p fmt "%s, %Ld" (ir i.rd) i.imm
  | Op.Fence | Op.Fixed _ -> ()
  | Op.Csr _ -> p fmt "%s, 0x%x, %s" (ir i.rd) i.csr (ir i.rs1)
  | Op.Csri _ -> p fmt "%s, 0x%x, %d" (ir i.rd) i.csr i.rs1

let pp fmt i =
  let prefix = if i.len = 2 then "c." else "" in
  match Op.encoding i.op with
  | Op.Fence | Op.Fixed _ -> Format.fprintf fmt "%s%s" prefix (Op.mnemonic i.op)
  | _ -> Format.fprintf fmt "%s%s %a" prefix (Op.mnemonic i.op) pp_operands i

let to_string i = Format.asprintf "%a" pp i
