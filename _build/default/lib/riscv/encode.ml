(* RV64GC instruction encoder: the inverse of [Decode].

   [encode_word] produces the canonical 32-bit encoding; [compress]
   produces the 16-bit RVC encoding when one exists (CodeGenAPI uses it
   for space-efficient instrumentation jumps, paper §3.1.2). *)

open Dyn_util

exception Encode_error of string

let fail fmt = Format.kasprintf (fun s -> raise (Encode_error s)) fmt

let check_reg name r =
  if r < 0 || r > 31 then fail "%s: register index %d out of range" name r

let check_simm i op len =
  if not (Bits.fits_signed i len) then
    fail "%s: immediate %Ld does not fit in %d bits" (Op.mnemonic op) i len

let encode_word (i : Insn.t) =
  check_reg "rd" i.rd;
  check_reg "rs1" i.rs1;
  check_reg "rs2" i.rs2;
  check_reg "rs3" i.rs3;
  let imm = Int64.to_int i.imm in
  match Op.encoding i.op with
  | Op.R (opc, f3, f7) ->
      opc lor (i.rd lsl 7) lor (f3 lsl 12) lor (i.rs1 lsl 15)
      lor (i.rs2 lsl 20) lor (f7 lsl 25)
  | Op.R_rs2 (opc, f3, f7, rs2) ->
      opc lor (i.rd lsl 7) lor (f3 lsl 12) lor (i.rs1 lsl 15) lor (rs2 lsl 20)
      lor (f7 lsl 25)
  | Op.R_rm (opc, f7) ->
      opc lor (i.rd lsl 7) lor (i.rm lsl 12) lor (i.rs1 lsl 15)
      lor (i.rs2 lsl 20) lor (f7 lsl 25)
  | Op.R_rm_rs2 (opc, f7, rs2) ->
      opc lor (i.rd lsl 7) lor (i.rm lsl 12) lor (i.rs1 lsl 15) lor (rs2 lsl 20)
      lor (f7 lsl 25)
  | Op.R4 (opc, f2) ->
      opc lor (i.rd lsl 7) lor (i.rm lsl 12) lor (i.rs1 lsl 15)
      lor (i.rs2 lsl 20) lor (f2 lsl 25) lor (i.rs3 lsl 27)
  | Op.A (f3, f5) ->
      0x2F lor (i.rd lsl 7) lor (f3 lsl 12) lor (i.rs1 lsl 15)
      lor (i.rs2 lsl 20)
      lor ((if i.rl then 1 else 0) lsl 25)
      lor ((if i.aq then 1 else 0) lsl 26)
      lor (f5 lsl 27)
  | Op.I (opc, f3) ->
      check_simm i.imm i.op 12;
      opc lor (i.rd lsl 7) lor (f3 lsl 12) lor (i.rs1 lsl 15)
      lor ((imm land 0xFFF) lsl 20)
  | Op.Sh (opc, f3, f6) ->
      if imm < 0 || imm > 63 then fail "%s: shamt %d" (Op.mnemonic i.op) imm;
      opc lor (i.rd lsl 7) lor (f3 lsl 12) lor (i.rs1 lsl 15) lor (imm lsl 20)
      lor (f6 lsl 26)
  | Op.Sh5 (opc, f3, f7) ->
      if imm < 0 || imm > 31 then fail "%s: shamt %d" (Op.mnemonic i.op) imm;
      opc lor (i.rd lsl 7) lor (f3 lsl 12) lor (i.rs1 lsl 15) lor (imm lsl 20)
      lor (f7 lsl 25)
  | Op.S (opc, f3) ->
      check_simm i.imm i.op 12;
      opc
      lor ((imm land 0x1F) lsl 7)
      lor (f3 lsl 12) lor (i.rs1 lsl 15) lor (i.rs2 lsl 20)
      lor (((imm lsr 5) land 0x7F) lsl 25)
  | Op.B f3 ->
      check_simm i.imm i.op 13;
      if imm land 1 <> 0 then fail "%s: odd branch offset" (Op.mnemonic i.op);
      0x63
      lor (Bits.extract imm 11 1 lsl 7)
      lor (Bits.extract imm 1 4 lsl 8)
      lor (f3 lsl 12) lor (i.rs1 lsl 15) lor (i.rs2 lsl 20)
      lor (Bits.extract imm 5 6 lsl 25)
      lor (Bits.extract imm 12 1 lsl 31)
  | Op.U opc ->
      (* imm carries the full sign-extended value with low 12 bits zero *)
      if imm land 0xFFF <> 0 then fail "%s: low bits set" (Op.mnemonic i.op);
      check_simm i.imm i.op 32;
      opc lor (i.rd lsl 7) lor ((imm land 0xFFFFF000) land 0xFFFFFFFF)
  | Op.J opc ->
      check_simm i.imm i.op 21;
      if imm land 1 <> 0 then fail "%s: odd jump offset" (Op.mnemonic i.op);
      opc lor (i.rd lsl 7)
      lor (Bits.extract imm 12 8 lsl 12)
      lor (Bits.extract imm 11 1 lsl 20)
      lor (Bits.extract imm 1 10 lsl 21)
      lor (Bits.extract imm 20 1 lsl 31)
  | Op.Fence -> 0x0F lor ((imm land 0xFFF) lsl 20)
  | Op.Fixed w -> w
  | Op.Csr f3 ->
      0x73 lor (i.rd lsl 7) lor (f3 lsl 12) lor (i.rs1 lsl 15)
      lor ((i.csr land 0xFFF) lsl 20)
  | Op.Csri f3 ->
      0x73 lor (i.rd lsl 7) lor (f3 lsl 12) lor (i.rs1 lsl 15)
      lor ((i.csr land 0xFFF) lsl 20)

(* --- RVC compression --------------------------------------------------- *)

let is_c_reg r = r >= 8 && r <= 15
let c3 r = (r - 8) land 0x7
let bitsel v src dst = ((v lsr src) land 1) lsl dst

(* 16-bit RVC encoding of [i], if one exists. *)
let compress (i : Insn.t) =
  let imm = Int64.to_int i.imm in
  let fits n = Bits.fits_signed_int imm n in
  match i.op with
  | Op.JAL when i.rd = 0 && fits 12 && imm land 1 = 0 ->
      (* c.j *)
      let f =
        bitsel imm 11 12 lor bitsel imm 4 11 lor bitsel imm 9 10
        lor bitsel imm 8 9 lor bitsel imm 10 8 lor bitsel imm 6 7
        lor bitsel imm 7 6 lor bitsel imm 3 5 lor bitsel imm 2 4
        lor bitsel imm 1 3 lor bitsel imm 5 2
      in
      Some (0x1 lor (5 lsl 13) lor f)
  | Op.JALR when i.imm = 0L && i.rs1 <> 0 && i.rd = 0 ->
      Some (0x2 lor (4 lsl 13) lor (i.rs1 lsl 7)) (* c.jr *)
  | Op.JALR when i.imm = 0L && i.rs1 <> 0 && i.rd = 1 ->
      Some (0x2 lor (4 lsl 13) lor (1 lsl 12) lor (i.rs1 lsl 7)) (* c.jalr *)
  | Op.ADD when i.rd <> 0 && i.rs1 = 0 && i.rs2 <> 0 ->
      Some (0x2 lor (4 lsl 13) lor (i.rd lsl 7) lor (i.rs2 lsl 2)) (* c.mv *)
  | Op.ADD when i.rd <> 0 && i.rd = i.rs1 && i.rs2 <> 0 ->
      Some (0x2 lor (4 lsl 13) lor (1 lsl 12) lor (i.rd lsl 7) lor (i.rs2 lsl 2))
  | Op.ADDI when i.rd <> 0 && i.rs1 = 0 && fits 6 ->
      (* c.li *)
      Some
        (0x1 lor (2 lsl 13) lor (bitsel imm 5 12) lor (i.rd lsl 7)
        lor ((imm land 0x1F) lsl 2))
  | Op.ADDI when i.rd = 2 && i.rs1 = 2 && imm <> 0 && imm land 0xF = 0 && fits 10 ->
      (* c.addi16sp *)
      let f =
        bitsel imm 9 12 lor bitsel imm 4 6 lor bitsel imm 6 5
        lor bitsel imm 8 4 lor bitsel imm 7 3 lor bitsel imm 5 2
      in
      Some (0x1 lor (3 lsl 13) lor (2 lsl 7) lor f)
  | Op.ADDI
    when is_c_reg i.rd && i.rs1 = 2 && imm > 0 && imm land 0x3 = 0 && imm < 1024 ->
      (* c.addi4spn *)
      let f =
        bitsel imm 5 12 lor bitsel imm 4 11 lor bitsel imm 9 10
        lor bitsel imm 8 9 lor bitsel imm 7 8 lor bitsel imm 6 7
        lor bitsel imm 2 6 lor bitsel imm 3 5
      in
      Some ((c3 i.rd lsl 2) lor f)
  | Op.ADDI when i.rd <> 0 && i.rd = i.rs1 && imm <> 0 && fits 6 ->
      (* c.addi *)
      Some
        (0x1 lor (bitsel imm 5 12) lor (i.rd lsl 7) lor ((imm land 0x1F) lsl 2))
  | Op.ADDIW when i.rd <> 0 && i.rd = i.rs1 && fits 6 ->
      Some
        (0x1 lor (1 lsl 13) lor (bitsel imm 5 12) lor (i.rd lsl 7)
        lor ((imm land 0x1F) lsl 2))
  | Op.LUI
    when i.rd <> 0 && i.rd <> 2 && imm <> 0
         && Bits.fits_signed_int (imm asr 12) 6 && imm land 0xFFF = 0 ->
      let hi = imm asr 12 in
      Some
        (0x1 lor (3 lsl 13) lor (bitsel hi 5 12) lor (i.rd lsl 7)
        lor ((hi land 0x1F) lsl 2))
  | Op.SLLI when i.rd <> 0 && i.rd = i.rs1 && imm > 0 && imm < 64 ->
      Some (0x2 lor (bitsel imm 5 12) lor (i.rd lsl 7) lor ((imm land 0x1F) lsl 2))
  | Op.SRLI when is_c_reg i.rd && i.rd = i.rs1 && imm > 0 && imm < 64 ->
      Some
        (0x1 lor (4 lsl 13) lor (bitsel imm 5 12) lor (c3 i.rd lsl 7)
        lor ((imm land 0x1F) lsl 2))
  | Op.SRAI when is_c_reg i.rd && i.rd = i.rs1 && imm > 0 && imm < 64 ->
      Some
        (0x1 lor (4 lsl 13) lor (bitsel imm 5 12) lor (1 lsl 10)
        lor (c3 i.rd lsl 7) lor ((imm land 0x1F) lsl 2))
  | Op.ANDI when is_c_reg i.rd && i.rd = i.rs1 && fits 6 ->
      Some
        (0x1 lor (4 lsl 13) lor (bitsel imm 5 12) lor (2 lsl 10)
        lor (c3 i.rd lsl 7) lor ((imm land 0x1F) lsl 2))
  | (Op.SUB | Op.XOR | Op.OR | Op.AND | Op.SUBW | Op.ADDW)
    when is_c_reg i.rd && i.rd = i.rs1 && is_c_reg i.rs2 ->
      let hi, lo =
        match i.op with
        | Op.SUB -> (0, 0)
        | Op.XOR -> (0, 1)
        | Op.OR -> (0, 2)
        | Op.AND -> (0, 3)
        | Op.SUBW -> (1, 0)
        | _ -> (1, 1)
      in
      Some
        (0x1 lor (4 lsl 13) lor (hi lsl 12) lor (3 lsl 10) lor (c3 i.rd lsl 7)
        lor (lo lsl 5) lor (c3 i.rs2 lsl 2))
  | (Op.BEQ | Op.BNE)
    when i.rs2 = 0 && is_c_reg i.rs1 && fits 9 && imm land 1 = 0 ->
      let f3 = if i.op = Op.BEQ then 6 else 7 in
      let f =
        bitsel imm 8 12 lor bitsel imm 4 11 lor bitsel imm 3 10
        lor bitsel imm 7 6 lor bitsel imm 6 5 lor bitsel imm 2 4
        lor bitsel imm 1 3 lor bitsel imm 5 2
      in
      Some (0x1 lor (f3 lsl 13) lor (c3 i.rs1 lsl 7) lor f)
  | (Op.LW | Op.LD | Op.FLD)
    when is_c_reg i.rd && is_c_reg i.rs1 && imm >= 0 ->
      let f3, ok =
        match i.op with
        | Op.LW -> (2, imm land 0x3 = 0 && imm < 128)
        | Op.LD -> (3, imm land 0x7 = 0 && imm < 256)
        | _ -> (1, imm land 0x7 = 0 && imm < 256)
      in
      if not ok then None
      else
        let f =
          if i.op = Op.LW then
            (Bits.extract imm 3 3 lsl 10) lor bitsel imm 2 6 lor bitsel imm 6 5
          else (Bits.extract imm 3 3 lsl 10) lor (Bits.extract imm 6 2 lsl 5)
        in
        Some ((f3 lsl 13) lor (c3 i.rs1 lsl 7) lor (c3 i.rd lsl 2) lor f)
  | (Op.SW | Op.SD | Op.FSD)
    when is_c_reg i.rs2 && is_c_reg i.rs1 && imm >= 0 ->
      let f3, ok =
        match i.op with
        | Op.SW -> (6, imm land 0x3 = 0 && imm < 128)
        | Op.SD -> (7, imm land 0x7 = 0 && imm < 256)
        | _ -> (5, imm land 0x7 = 0 && imm < 256)
      in
      if not ok then None
      else
        let f =
          if i.op = Op.SW then
            (Bits.extract imm 3 3 lsl 10) lor bitsel imm 2 6 lor bitsel imm 6 5
          else (Bits.extract imm 3 3 lsl 10) lor (Bits.extract imm 6 2 lsl 5)
        in
        Some ((f3 lsl 13) lor (c3 i.rs1 lsl 7) lor (c3 i.rs2 lsl 2) lor f)
  | (Op.LW | Op.LD | Op.FLD) when i.rs1 = 2 && imm >= 0 ->
      (* sp-relative loads; c.lwsp/c.ldsp need rd <> 0 *)
      let f3, ok =
        match i.op with
        | Op.LW -> (2, i.rd <> 0 && imm land 0x3 = 0 && imm < 256)
        | Op.LD -> (3, i.rd <> 0 && imm land 0x7 = 0 && imm < 512)
        | _ -> (1, imm land 0x7 = 0 && imm < 512)
      in
      if not ok then None
      else
        let f =
          if i.op = Op.LW then
            bitsel imm 5 12 lor (Bits.extract imm 2 3 lsl 4)
            lor (Bits.extract imm 6 2 lsl 2)
          else
            bitsel imm 5 12 lor (Bits.extract imm 3 2 lsl 5)
            lor (Bits.extract imm 6 3 lsl 2)
        in
        Some (0x2 lor (f3 lsl 13) lor (i.rd lsl 7) lor f)
  | (Op.SW | Op.SD | Op.FSD) when i.rs1 = 2 && imm >= 0 ->
      let f3, ok =
        match i.op with
        | Op.SW -> (6, imm land 0x3 = 0 && imm < 256)
        | Op.SD -> (7, imm land 0x7 = 0 && imm < 512)
        | _ -> (5, imm land 0x7 = 0 && imm < 512)
      in
      if not ok then None
      else
        let f =
          if i.op = Op.SW then
            (Bits.extract imm 2 4 lsl 9) lor (Bits.extract imm 6 2 lsl 7)
          else (Bits.extract imm 3 3 lsl 10) lor (Bits.extract imm 6 3 lsl 7)
        in
        Some (0x2 lor (f3 lsl 13) lor (i.rs2 lsl 2) lor f)
  | Op.EBREAK -> Some (0x2 lor (4 lsl 13) lor (1 lsl 12))
  | _ -> None

(* Encode [i] to bytes.  With [~try_compress:true], emit the RVC form when
   one exists (requires the C extension in the target profile). *)
let encode ?(try_compress = false) (i : Insn.t) =
  match if try_compress then compress i else None with
  | Some hw ->
      let b = Bytes.create 2 in
      Bytes.set_uint16_le b 0 hw;
      b
  | None ->
      let w = encode_word i in
      let b = Bytes.create 4 in
      Bytes.set_uint16_le b 0 (w land 0xFFFF);
      Bytes.set_uint16_le b 2 ((w lsr 16) land 0xFFFF);
      b

let append_insn buf ?try_compress i =
  Buffer.add_bytes buf (encode ?try_compress i)
