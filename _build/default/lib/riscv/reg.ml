(* RISC-V register model.

   Registers are identified by small ints in a single flat space so that
   dataflow bit-sets stay cheap:
     0..31    integer registers x0..x31
     32..63   floating-point registers f0..f31
     64       fcsr (fflags/frm, treated as one unit)
   The zero register x0 is id 0 and is never a real definition. *)

type t = int

let n_regs = 65
let x i = if i < 0 || i > 31 then invalid_arg "Reg.x" else i
let f i = if i < 0 || i > 31 then invalid_arg "Reg.f" else 32 + i
let fcsr = 64
let is_int r = r >= 0 && r < 32
let is_fp r = r >= 32 && r < 64
let int_index r = if is_int r then r else invalid_arg "Reg.int_index"
let fp_index r = if is_fp r then r - 32 else invalid_arg "Reg.fp_index"

(* Special integer registers, by ABI convention. *)
let zero = x 0
let ra = x 1 (* return address / standard link register *)
let sp = x 2
let gp = x 3
let tp = x 4
let t0 = x 5
let t1 = x 6
let t2 = x 7
let s0 = x 8 (* frame pointer when the compiler keeps one *)
let fp = s0
let s1 = x 9
let a0 = x 10
let a1 = x 11
let a2 = x 12
let a3 = x 13
let a4 = x 14
let a5 = x 15
let a6 = x 16
let a7 = x 17
let t3 = x 28
let t4 = x 29
let t5 = x 30
let t6 = x 31

let abi_int_names =
  [| "zero"; "ra"; "sp"; "gp"; "tp"; "t0"; "t1"; "t2"; "s0"; "s1"; "a0";
     "a1"; "a2"; "a3"; "a4"; "a5"; "a6"; "a7"; "s2"; "s3"; "s4"; "s5";
     "s6"; "s7"; "s8"; "s9"; "s10"; "s11"; "t3"; "t4"; "t5"; "t6" |]

let abi_fp_names =
  [| "ft0"; "ft1"; "ft2"; "ft3"; "ft4"; "ft5"; "ft6"; "ft7"; "fs0"; "fs1";
     "fa0"; "fa1"; "fa2"; "fa3"; "fa4"; "fa5"; "fa6"; "fa7"; "fs2"; "fs3";
     "fs4"; "fs5"; "fs6"; "fs7"; "fs8"; "fs9"; "fs10"; "fs11"; "ft8";
     "ft9"; "ft10"; "ft11" |]

let name r =
  if is_int r then abi_int_names.(r)
  else if is_fp r then abi_fp_names.(r - 32)
  else if r = fcsr then "fcsr"
  else invalid_arg "Reg.name"

let pp fmt r = Format.pp_print_string fmt (name r)

(* Callee-saved integer registers per the RISC-V psABI: sp, s0-s11.
   (ra is caller-saved; gp/tp are unallocatable.) *)
let callee_saved_int = [ 2; 8; 9; 18; 19; 20; 21; 22; 23; 24; 25; 26; 27 ]

(* Caller-saved (volatile) integer registers: ra, t0-t6, a0-a7. *)
let caller_saved_int = [ 1; 5; 6; 7; 10; 11; 12; 13; 14; 15; 16; 17; 28; 29; 30; 31 ]

let arg_regs = [ a0; a1; a2; a3; a4; a5; a6; a7 ]
let fp_arg_regs = [ f 10; f 11; f 12; f 13; f 14; f 15; f 16; f 17 ]
let temp_regs = [ t0; t1; t2; t3; t4; t5; t6 ]
