(* Shared floating-point and wide-multiply helpers, used by both the
   simulator (Rvsim.Machine) and the semantics evaluator (Sailsem.Eval)
   so the two agree bit-for-bit. *)

(* --- NaN boxing of singles in 64-bit FP registers ------------------------ *)

let nan_box32 bits32 = Int64.logor 0xFFFF_FFFF_0000_0000L (Int64.of_int bits32)

let unbox32 (v : int64) =
  if Int64.equal (Int64.logand v 0xFFFF_FFFF_0000_0000L) 0xFFFF_FFFF_0000_0000L
  then Int64.to_int (Int64.logand v 0xFFFF_FFFFL)
  else 0x7FC00000 (* canonical quiet NaN *)

let f32_of_bits b = Int32.float_of_bits (Int32.of_int b)
let bits_of_f32 f = Int32.to_int (Int32.bits_of_float f) land 0xFFFF_FFFF
let f64_of_bits = Int64.float_of_bits
let bits_of_f64 = Int64.bits_of_float

(* --- classification ------------------------------------------------------ *)

let fclass (f : float) =
  let neg = Float.sign_bit f in
  match Float.classify_float f with
  | FP_infinite -> if neg then 1 lsl 0 else 1 lsl 7
  | FP_normal -> if neg then 1 lsl 1 else 1 lsl 6
  | FP_subnormal -> if neg then 1 lsl 2 else 1 lsl 5
  | FP_zero -> if neg then 1 lsl 3 else 1 lsl 4
  | FP_nan -> 1 lsl 9 (* quiet NaN; signaling NaNs are not tracked *)

(* --- float -> integer conversions with RISC-V rounding modes ------------- *)

let fcvt_to_int64 ~rm ~signed ~width f =
  let lo, hi =
    match (signed, width) with
    | true, 32 -> (-2147483648.0, 2147483647.0)
    | false, 32 -> (0.0, 4294967295.0)
    | true, _ -> (-9.2233720368547758e18, 9.2233720368547758e18)
    | false, _ -> (0.0, 1.8446744073709552e19)
  in
  let rounded =
    match rm with
    | 1 -> Float.trunc f (* RTZ *)
    | 2 -> Float.floor f (* RDN *)
    | 3 -> Float.ceil f (* RUP *)
    | 4 -> Float.round f (* RMM: nearest, ties away from zero *)
    | _ ->
        (* RNE: nearest, ties to even (also used for DYN) *)
        let fl = Float.floor f and ce = Float.ceil f in
        let dl = f -. fl and dc = ce -. f in
        if dl < dc then fl
        else if dc < dl then ce
        else if Float.rem fl 2.0 = 0.0 then fl
        else ce
  in
  if Float.is_nan f then
    if signed then Int64.sub (Int64.shift_left 1L (width - 1)) 1L
    else Int64.minus_one
  else if rounded < lo then
    if signed then Int64.neg (Int64.shift_left 1L (width - 1)) else 0L
  else if rounded > hi then
    if signed then Int64.sub (Int64.shift_left 1L (width - 1)) 1L
    else Int64.minus_one
  else if signed then Int64.of_float rounded
  else if rounded >= 9.2233720368547758e18 then
    Int64.add (Int64.of_float (rounded -. 9.2233720368547758e18)) Int64.min_int
  else Int64.of_float rounded

let u64_to_float (v : int64) =
  if Int64.compare v 0L >= 0 then Int64.to_float v
  else
    Int64.to_float (Int64.shift_right_logical v 1) *. 2.0
    +. Int64.to_float (Int64.logand v 1L)

(* --- 128-bit multiply highs ----------------------------------------------- *)

let mulhu (a : int64) (b : int64) =
  let mask = 0xFFFF_FFFFL in
  let al = Int64.logand a mask and ah = Int64.shift_right_logical a 32 in
  let bl = Int64.logand b mask and bh = Int64.shift_right_logical b 32 in
  let ll = Int64.mul al bl in
  let lh = Int64.mul al bh in
  let hl = Int64.mul ah bl in
  let hh = Int64.mul ah bh in
  let carry =
    Int64.shift_right_logical
      (Int64.add
         (Int64.add (Int64.shift_right_logical ll 32) (Int64.logand lh mask))
         (Int64.logand hl mask))
      32
  in
  Int64.add
    (Int64.add hh
       (Int64.add (Int64.shift_right_logical lh 32) (Int64.shift_right_logical hl 32)))
    carry

let mulh a b =
  let r = mulhu a b in
  let r = if Int64.compare a 0L < 0 then Int64.sub r b else r in
  if Int64.compare b 0L < 0 then Int64.sub r a else r

let mulhsu a b =
  let r = mulhu a b in
  if Int64.compare a 0L < 0 then Int64.sub r b else r
