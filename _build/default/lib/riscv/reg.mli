(** The RISC-V register model: a flat id space so dataflow bit-sets stay
    cheap — 0..31 integer x-registers, 32..63 FP f-registers, 64 the fcsr
    pseudo-register. *)

type t = int

val n_regs : int

(** [x i] / [f i] build flat ids; raise on out-of-range indices. *)
val x : int -> t

val f : int -> t
val fcsr : t
val is_int : t -> bool
val is_fp : t -> bool
val int_index : t -> int
val fp_index : t -> int

(** {1 ABI names} *)

val zero : t

val ra : t
(** [ra] is the standard link register (paper §3.1.3). *)

val sp : t
val gp : t
val tp : t
val t0 : t
val t1 : t
val t2 : t
val s0 : t

val fp : t
(** [fp] is an alias of s0 — the nominal frame pointer (§3.2.7). *)

val s1 : t
val a0 : t
val a1 : t
val a2 : t
val a3 : t
val a4 : t
val a5 : t
val a6 : t
val a7 : t
val t3 : t
val t4 : t
val t5 : t
val t6 : t

(** ABI name ("zero", "ra", "fa0", ...). *)
val name : t -> string

val pp : Format.formatter -> t -> unit

(** psABI register classes (integer side). *)
val callee_saved_int : t list

val caller_saved_int : t list
val arg_regs : t list
val fp_arg_regs : t list
val temp_regs : t list

(**/**)

val abi_int_names : string array
val abi_fp_names : string array
