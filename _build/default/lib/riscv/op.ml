(* The RV64GC opcode set: one constructor per base instruction.

   Compressed (C extension) instructions are not separate constructors:
   every RVC instruction expands to exactly one base instruction, so the
   decoder produces the expanded opcode with [Insn.len = 2] (this mirrors
   how the paper treats them, §3.1.2).  The encoding table here is the
   single source of truth shared by the decoder, the encoder, the
   assembler and the disassembler. *)

type t =
  (* RV32I / RV64I *)
  | LUI | AUIPC | JAL | JALR
  | BEQ | BNE | BLT | BGE | BLTU | BGEU
  | LB | LH | LW | LBU | LHU | LWU | LD
  | SB | SH | SW | SD
  | ADDI | SLTI | SLTIU | XORI | ORI | ANDI | SLLI | SRLI | SRAI
  | ADD | SUB | SLL | SLT | SLTU | XOR | SRL | SRA | OR | AND
  | ADDIW | SLLIW | SRLIW | SRAIW
  | ADDW | SUBW | SLLW | SRLW | SRAW
  | FENCE | ECALL | EBREAK
  (* Zifencei *)
  | FENCE_I
  (* Zicsr *)
  | CSRRW | CSRRS | CSRRC | CSRRWI | CSRRSI | CSRRCI
  (* M *)
  | MUL | MULH | MULHSU | MULHU | DIV | DIVU | REM | REMU
  | MULW | DIVW | DIVUW | REMW | REMUW
  (* A *)
  | LR_W | SC_W | AMOSWAP_W | AMOADD_W | AMOXOR_W | AMOAND_W | AMOOR_W
  | AMOMIN_W | AMOMAX_W | AMOMINU_W | AMOMAXU_W
  | LR_D | SC_D | AMOSWAP_D | AMOADD_D | AMOXOR_D | AMOAND_D | AMOOR_D
  | AMOMIN_D | AMOMAX_D | AMOMINU_D | AMOMAXU_D
  (* F *)
  | FLW | FSW
  | FMADD_S | FMSUB_S | FNMSUB_S | FNMADD_S
  | FADD_S | FSUB_S | FMUL_S | FDIV_S | FSQRT_S
  | FSGNJ_S | FSGNJN_S | FSGNJX_S | FMIN_S | FMAX_S
  | FCVT_W_S | FCVT_WU_S | FMV_X_W | FEQ_S | FLT_S | FLE_S | FCLASS_S
  | FCVT_S_W | FCVT_S_WU | FMV_W_X
  | FCVT_L_S | FCVT_LU_S | FCVT_S_L | FCVT_S_LU
  (* D *)
  | FLD | FSD
  | FMADD_D | FMSUB_D | FNMSUB_D | FNMADD_D
  | FADD_D | FSUB_D | FMUL_D | FDIV_D | FSQRT_D
  | FSGNJ_D | FSGNJN_D | FSGNJX_D | FMIN_D | FMAX_D
  | FCVT_S_D | FCVT_D_S | FEQ_D | FLT_D | FLE_D | FCLASS_D
  | FCVT_W_D | FCVT_WU_D | FCVT_D_W | FCVT_D_WU
  | FCVT_L_D | FCVT_LU_D | FMV_X_D | FCVT_D_L | FCVT_D_LU | FMV_D_X
  (* Zba (address generation) — paper 3.4 future-work extension *)
  | SH1ADD | SH2ADD | SH3ADD | ADD_UW | SH1ADD_UW | SH2ADD_UW | SH3ADD_UW
  | SLLI_UW
  (* Zbb (basic bit manipulation) *)
  | ANDN | ORN | XNOR
  | CLZ | CTZ | CPOP | CLZW | CTZW | CPOPW
  | MAX | MAXU | MIN | MINU
  | SEXT_B | SEXT_H | ZEXT_H
  | ROL | ROR | RORI | ROLW | RORW | RORIW
  | REV8 | ORC_B

(* Instruction encoding formats; field values are the fixed bits. *)
type enc =
  | R of int * int * int (* opc, funct3, funct7: rd, rs1, rs2 *)
  | R_rs2 of int * int * int * int (* opc, funct3, funct7, fixed rs2: rd, rs1 *)
  | R_rm of int * int (* opc, funct7; rounding mode variable in funct3 *)
  | R_rm_rs2 of int * int * int (* opc, funct7, fixed rs2; rm variable *)
  | R4 of int * int (* opc, fmt2 (funct7[1:0]); rd, rs1, rs2, rs3, rm *)
  | A of int * int (* funct3, funct5; aq/rl variable; opc = 0x2F *)
  | I of int * int (* opc, funct3: rd, rs1, imm12 *)
  | Sh of int * int * int (* opc, funct3, funct6: rd, rs1, shamt6 *)
  | Sh5 of int * int * int (* opc, funct3, funct7: rd, rs1, shamt5 (W shifts) *)
  | S of int * int (* opc, funct3: rs1, rs2, imm12 *)
  | B of int (* funct3: rs1, rs2, imm13; opc = 0x63 *)
  | U of int (* opc: rd, imm20<<12 *)
  | J of int (* opc: rd, imm21 *)
  | Fence (* pred/succ in imm field *)
  | Fixed of int (* whole word fixed (ecall, ebreak, fence.i) *)
  | Csr of int (* funct3: rd, rs1, csr *)
  | Csri of int (* funct3: rd, zimm5, csr *)

(* op, mnemonic, extension, encoding *)
let table : (t * string * Ext.t * enc) list =
  [
    (LUI, "lui", I, U 0x37);
    (AUIPC, "auipc", I, U 0x17);
    (JAL, "jal", I, J 0x6F);
    (JALR, "jalr", I, I (0x67, 0));
    (BEQ, "beq", I, B 0);
    (BNE, "bne", I, B 1);
    (BLT, "blt", I, B 4);
    (BGE, "bge", I, B 5);
    (BLTU, "bltu", I, B 6);
    (BGEU, "bgeu", I, B 7);
    (LB, "lb", I, I (0x03, 0));
    (LH, "lh", I, I (0x03, 1));
    (LW, "lw", I, I (0x03, 2));
    (LD, "ld", I, I (0x03, 3));
    (LBU, "lbu", I, I (0x03, 4));
    (LHU, "lhu", I, I (0x03, 5));
    (LWU, "lwu", I, I (0x03, 6));
    (SB, "sb", I, S (0x23, 0));
    (SH, "sh", I, S (0x23, 1));
    (SW, "sw", I, S (0x23, 2));
    (SD, "sd", I, S (0x23, 3));
    (ADDI, "addi", I, I (0x13, 0));
    (SLTI, "slti", I, I (0x13, 2));
    (SLTIU, "sltiu", I, I (0x13, 3));
    (XORI, "xori", I, I (0x13, 4));
    (ORI, "ori", I, I (0x13, 6));
    (ANDI, "andi", I, I (0x13, 7));
    (SLLI, "slli", I, Sh (0x13, 1, 0x00));
    (SRLI, "srli", I, Sh (0x13, 5, 0x00));
    (SRAI, "srai", I, Sh (0x13, 5, 0x10));
    (ADD, "add", I, R (0x33, 0, 0x00));
    (SUB, "sub", I, R (0x33, 0, 0x20));
    (SLL, "sll", I, R (0x33, 1, 0x00));
    (SLT, "slt", I, R (0x33, 2, 0x00));
    (SLTU, "sltu", I, R (0x33, 3, 0x00));
    (XOR, "xor", I, R (0x33, 4, 0x00));
    (SRL, "srl", I, R (0x33, 5, 0x00));
    (SRA, "sra", I, R (0x33, 5, 0x20));
    (OR, "or", I, R (0x33, 6, 0x00));
    (AND, "and", I, R (0x33, 7, 0x00));
    (ADDIW, "addiw", I, I (0x1B, 0));
    (SLLIW, "slliw", I, Sh5 (0x1B, 1, 0x00));
    (SRLIW, "srliw", I, Sh5 (0x1B, 5, 0x00));
    (SRAIW, "sraiw", I, Sh5 (0x1B, 5, 0x20));
    (ADDW, "addw", I, R (0x3B, 0, 0x00));
    (SUBW, "subw", I, R (0x3B, 0, 0x20));
    (SLLW, "sllw", I, R (0x3B, 1, 0x00));
    (SRLW, "srlw", I, R (0x3B, 5, 0x00));
    (SRAW, "sraw", I, R (0x3B, 5, 0x20));
    (FENCE, "fence", I, Fence);
    (ECALL, "ecall", I, Fixed 0x00000073);
    (EBREAK, "ebreak", I, Fixed 0x00100073);
    (FENCE_I, "fence.i", Zifencei, Fixed 0x0000100F);
    (CSRRW, "csrrw", Zicsr, Csr 1);
    (CSRRS, "csrrs", Zicsr, Csr 2);
    (CSRRC, "csrrc", Zicsr, Csr 3);
    (CSRRWI, "csrrwi", Zicsr, Csri 5);
    (CSRRSI, "csrrsi", Zicsr, Csri 6);
    (CSRRCI, "csrrci", Zicsr, Csri 7);
    (MUL, "mul", M, R (0x33, 0, 0x01));
    (MULH, "mulh", M, R (0x33, 1, 0x01));
    (MULHSU, "mulhsu", M, R (0x33, 2, 0x01));
    (MULHU, "mulhu", M, R (0x33, 3, 0x01));
    (DIV, "div", M, R (0x33, 4, 0x01));
    (DIVU, "divu", M, R (0x33, 5, 0x01));
    (REM, "rem", M, R (0x33, 6, 0x01));
    (REMU, "remu", M, R (0x33, 7, 0x01));
    (MULW, "mulw", M, R (0x3B, 0, 0x01));
    (DIVW, "divw", M, R (0x3B, 4, 0x01));
    (DIVUW, "divuw", M, R (0x3B, 5, 0x01));
    (REMW, "remw", M, R (0x3B, 6, 0x01));
    (REMUW, "remuw", M, R (0x3B, 7, 0x01));
    (LR_W, "lr.w", A, A (2, 0x02));
    (SC_W, "sc.w", A, A (2, 0x03));
    (AMOSWAP_W, "amoswap.w", A, A (2, 0x01));
    (AMOADD_W, "amoadd.w", A, A (2, 0x00));
    (AMOXOR_W, "amoxor.w", A, A (2, 0x04));
    (AMOAND_W, "amoand.w", A, A (2, 0x0C));
    (AMOOR_W, "amoor.w", A, A (2, 0x08));
    (AMOMIN_W, "amomin.w", A, A (2, 0x10));
    (AMOMAX_W, "amomax.w", A, A (2, 0x14));
    (AMOMINU_W, "amominu.w", A, A (2, 0x18));
    (AMOMAXU_W, "amomaxu.w", A, A (2, 0x1C));
    (LR_D, "lr.d", A, A (3, 0x02));
    (SC_D, "sc.d", A, A (3, 0x03));
    (AMOSWAP_D, "amoswap.d", A, A (3, 0x01));
    (AMOADD_D, "amoadd.d", A, A (3, 0x00));
    (AMOXOR_D, "amoxor.d", A, A (3, 0x04));
    (AMOAND_D, "amoand.d", A, A (3, 0x0C));
    (AMOOR_D, "amoor.d", A, A (3, 0x08));
    (AMOMIN_D, "amomin.d", A, A (3, 0x10));
    (AMOMAX_D, "amomax.d", A, A (3, 0x14));
    (AMOMINU_D, "amominu.d", A, A (3, 0x18));
    (AMOMAXU_D, "amomaxu.d", A, A (3, 0x1C));
    (FLW, "flw", F, I (0x07, 2));
    (FSW, "fsw", F, S (0x27, 2));
    (FMADD_S, "fmadd.s", F, R4 (0x43, 0));
    (FMSUB_S, "fmsub.s", F, R4 (0x47, 0));
    (FNMSUB_S, "fnmsub.s", F, R4 (0x4B, 0));
    (FNMADD_S, "fnmadd.s", F, R4 (0x4F, 0));
    (FADD_S, "fadd.s", F, R_rm (0x53, 0x00));
    (FSUB_S, "fsub.s", F, R_rm (0x53, 0x04));
    (FMUL_S, "fmul.s", F, R_rm (0x53, 0x08));
    (FDIV_S, "fdiv.s", F, R_rm (0x53, 0x0C));
    (FSQRT_S, "fsqrt.s", F, R_rm_rs2 (0x53, 0x2C, 0));
    (FSGNJ_S, "fsgnj.s", F, R (0x53, 0, 0x10));
    (FSGNJN_S, "fsgnjn.s", F, R (0x53, 1, 0x10));
    (FSGNJX_S, "fsgnjx.s", F, R (0x53, 2, 0x10));
    (FMIN_S, "fmin.s", F, R (0x53, 0, 0x14));
    (FMAX_S, "fmax.s", F, R (0x53, 1, 0x14));
    (FCVT_W_S, "fcvt.w.s", F, R_rm_rs2 (0x53, 0x60, 0));
    (FCVT_WU_S, "fcvt.wu.s", F, R_rm_rs2 (0x53, 0x60, 1));
    (FCVT_L_S, "fcvt.l.s", F, R_rm_rs2 (0x53, 0x60, 2));
    (FCVT_LU_S, "fcvt.lu.s", F, R_rm_rs2 (0x53, 0x60, 3));
    (FMV_X_W, "fmv.x.w", F, R_rs2 (0x53, 0, 0x70, 0));
    (FEQ_S, "feq.s", F, R (0x53, 2, 0x50));
    (FLT_S, "flt.s", F, R (0x53, 1, 0x50));
    (FLE_S, "fle.s", F, R (0x53, 0, 0x50));
    (FCLASS_S, "fclass.s", F, R_rs2 (0x53, 1, 0x70, 0));
    (FCVT_S_W, "fcvt.s.w", F, R_rm_rs2 (0x53, 0x68, 0));
    (FCVT_S_WU, "fcvt.s.wu", F, R_rm_rs2 (0x53, 0x68, 1));
    (FCVT_S_L, "fcvt.s.l", F, R_rm_rs2 (0x53, 0x68, 2));
    (FCVT_S_LU, "fcvt.s.lu", F, R_rm_rs2 (0x53, 0x68, 3));
    (FMV_W_X, "fmv.w.x", F, R_rs2 (0x53, 0, 0x78, 0));
    (FLD, "fld", D, I (0x07, 3));
    (FSD, "fsd", D, S (0x27, 3));
    (FMADD_D, "fmadd.d", D, R4 (0x43, 1));
    (FMSUB_D, "fmsub.d", D, R4 (0x47, 1));
    (FNMSUB_D, "fnmsub.d", D, R4 (0x4B, 1));
    (FNMADD_D, "fnmadd.d", D, R4 (0x4F, 1));
    (FADD_D, "fadd.d", D, R_rm (0x53, 0x01));
    (FSUB_D, "fsub.d", D, R_rm (0x53, 0x05));
    (FMUL_D, "fmul.d", D, R_rm (0x53, 0x09));
    (FDIV_D, "fdiv.d", D, R_rm (0x53, 0x0D));
    (FSQRT_D, "fsqrt.d", D, R_rm_rs2 (0x53, 0x2D, 0));
    (FSGNJ_D, "fsgnj.d", D, R (0x53, 0, 0x11));
    (FSGNJN_D, "fsgnjn.d", D, R (0x53, 1, 0x11));
    (FSGNJX_D, "fsgnjx.d", D, R (0x53, 2, 0x11));
    (FMIN_D, "fmin.d", D, R (0x53, 0, 0x15));
    (FMAX_D, "fmax.d", D, R (0x53, 1, 0x15));
    (FCVT_S_D, "fcvt.s.d", D, R_rm_rs2 (0x53, 0x20, 1));
    (FCVT_D_S, "fcvt.d.s", D, R_rm_rs2 (0x53, 0x21, 0));
    (FEQ_D, "feq.d", D, R (0x53, 2, 0x51));
    (FLT_D, "flt.d", D, R (0x53, 1, 0x51));
    (FLE_D, "fle.d", D, R (0x53, 0, 0x51));
    (FCLASS_D, "fclass.d", D, R_rs2 (0x53, 1, 0x71, 0));
    (FCVT_W_D, "fcvt.w.d", D, R_rm_rs2 (0x53, 0x61, 0));
    (FCVT_WU_D, "fcvt.wu.d", D, R_rm_rs2 (0x53, 0x61, 1));
    (FCVT_L_D, "fcvt.l.d", D, R_rm_rs2 (0x53, 0x61, 2));
    (FCVT_LU_D, "fcvt.lu.d", D, R_rm_rs2 (0x53, 0x61, 3));
    (FCVT_D_W, "fcvt.d.w", D, R_rm_rs2 (0x53, 0x69, 0));
    (FCVT_D_WU, "fcvt.d.wu", D, R_rm_rs2 (0x53, 0x69, 1));
    (FCVT_D_L, "fcvt.d.l", D, R_rm_rs2 (0x53, 0x69, 2));
    (FCVT_D_LU, "fcvt.d.lu", D, R_rm_rs2 (0x53, 0x69, 3));
    (FMV_X_D, "fmv.x.d", D, R_rs2 (0x53, 0, 0x71, 0));
    (FMV_D_X, "fmv.d.x", D, R_rs2 (0x53, 0, 0x79, 0));
    (* Zba *)
    (SH1ADD, "sh1add", Zba, R (0x33, 2, 0x10));
    (SH2ADD, "sh2add", Zba, R (0x33, 4, 0x10));
    (SH3ADD, "sh3add", Zba, R (0x33, 6, 0x10));
    (ADD_UW, "add.uw", Zba, R (0x3B, 0, 0x04));
    (SH1ADD_UW, "sh1add.uw", Zba, R (0x3B, 2, 0x10));
    (SH2ADD_UW, "sh2add.uw", Zba, R (0x3B, 4, 0x10));
    (SH3ADD_UW, "sh3add.uw", Zba, R (0x3B, 6, 0x10));
    (SLLI_UW, "slli.uw", Zba, Sh (0x1B, 1, 0x02));
    (* Zbb *)
    (ANDN, "andn", Zbb, R (0x33, 7, 0x20));
    (ORN, "orn", Zbb, R (0x33, 6, 0x20));
    (XNOR, "xnor", Zbb, R (0x33, 4, 0x20));
    (CLZ, "clz", Zbb, R_rs2 (0x13, 1, 0x30, 0));
    (CTZ, "ctz", Zbb, R_rs2 (0x13, 1, 0x30, 1));
    (CPOP, "cpop", Zbb, R_rs2 (0x13, 1, 0x30, 2));
    (CLZW, "clzw", Zbb, R_rs2 (0x1B, 1, 0x30, 0));
    (CTZW, "ctzw", Zbb, R_rs2 (0x1B, 1, 0x30, 1));
    (CPOPW, "cpopw", Zbb, R_rs2 (0x1B, 1, 0x30, 2));
    (MAX, "max", Zbb, R (0x33, 6, 0x05));
    (MAXU, "maxu", Zbb, R (0x33, 7, 0x05));
    (MIN, "min", Zbb, R (0x33, 4, 0x05));
    (MINU, "minu", Zbb, R (0x33, 5, 0x05));
    (SEXT_B, "sext.b", Zbb, R_rs2 (0x13, 1, 0x30, 4));
    (SEXT_H, "sext.h", Zbb, R_rs2 (0x13, 1, 0x30, 5));
    (ZEXT_H, "zext.h", Zbb, R_rs2 (0x3B, 4, 0x04, 0));
    (ROL, "rol", Zbb, R (0x33, 1, 0x30));
    (ROR, "ror", Zbb, R (0x33, 5, 0x30));
    (RORI, "rori", Zbb, Sh (0x13, 5, 0x18));
    (ROLW, "rolw", Zbb, R (0x3B, 1, 0x30));
    (RORW, "rorw", Zbb, R (0x3B, 5, 0x30));
    (RORIW, "roriw", Zbb, Sh5 (0x1B, 5, 0x30));
    (REV8, "rev8", Zbb, R_rs2 (0x13, 5, 0x35, 0x18));
    (ORC_B, "orc.b", Zbb, R_rs2 (0x13, 5, 0x14, 7));
  ]

let info =
  let h = Hashtbl.create 256 in
  List.iter (fun (op, m, e, enc) -> Hashtbl.replace h op (m, e, enc)) table;
  fun op -> Hashtbl.find h op

let mnemonic op = let m, _, _ = info op in m
let extension op = let _, e, _ = info op in e
let encoding op = let _, _, enc = info op in enc

let of_mnemonic =
  let h = Hashtbl.create 256 in
  List.iter (fun (op, m, _, _) -> Hashtbl.replace h m op) table;
  fun m -> Hashtbl.find_opt h (String.lowercase_ascii m)

(* Classifications used across the toolkits. *)

let is_load = function
  | LB | LH | LW | LD | LBU | LHU | LWU | FLW | FLD -> true
  | LR_W | LR_D -> true
  | _ -> false

let is_store = function
  | SB | SH | SW | SD | FSW | FSD -> true
  | SC_W | SC_D -> true
  | _ -> false

let is_amo = function
  | AMOSWAP_W | AMOADD_W | AMOXOR_W | AMOAND_W | AMOOR_W | AMOMIN_W
  | AMOMAX_W | AMOMINU_W | AMOMAXU_W | AMOSWAP_D | AMOADD_D | AMOXOR_D
  | AMOAND_D | AMOOR_D | AMOMIN_D | AMOMAX_D | AMOMINU_D | AMOMAXU_D -> true
  | _ -> false

let is_cond_branch = function
  | BEQ | BNE | BLT | BGE | BLTU | BGEU -> true
  | _ -> false

(* jal / jalr: the multi-use control flow instructions of paper §3.1.3;
   their high-level role (call/return/jump/tail-call/jump-table) is
   decided by ParseAPI, not here. *)
let is_uncond_jump = function JAL | JALR -> true | _ -> false
let is_control_flow op = is_cond_branch op || is_uncond_jump op

(* Memory access size in bytes for loads/stores/amos. *)
let access_size = function
  | LB | LBU | SB -> 1
  | LH | LHU | SH -> 2
  | LW | LWU | SW | FLW | FSW | LR_W | SC_W -> 4
  | LD | SD | FLD | FSD | LR_D | SC_D -> 8
  | op when is_amo op -> (
      match op with
      | AMOSWAP_W | AMOADD_W | AMOXOR_W | AMOAND_W | AMOOR_W | AMOMIN_W
      | AMOMAX_W | AMOMINU_W | AMOMAXU_W -> 4
      | _ -> 8)
  | _ -> 0

(* Does rd name an FP register?  rs1 / rs2 / rs3 likewise. *)
let rd_is_fp = function
  | FLW | FLD
  | FMADD_S | FMSUB_S | FNMSUB_S | FNMADD_S
  | FADD_S | FSUB_S | FMUL_S | FDIV_S | FSQRT_S
  | FSGNJ_S | FSGNJN_S | FSGNJX_S | FMIN_S | FMAX_S
  | FCVT_S_W | FCVT_S_WU | FCVT_S_L | FCVT_S_LU | FMV_W_X
  | FMADD_D | FMSUB_D | FNMSUB_D | FNMADD_D
  | FADD_D | FSUB_D | FMUL_D | FDIV_D | FSQRT_D
  | FSGNJ_D | FSGNJN_D | FSGNJX_D | FMIN_D | FMAX_D
  | FCVT_S_D | FCVT_D_S | FCVT_D_W | FCVT_D_WU | FCVT_D_L | FCVT_D_LU
  | FMV_D_X -> true
  | _ -> false

let rs1_is_fp = function
  | FMADD_S | FMSUB_S | FNMSUB_S | FNMADD_S
  | FADD_S | FSUB_S | FMUL_S | FDIV_S | FSQRT_S
  | FSGNJ_S | FSGNJN_S | FSGNJX_S | FMIN_S | FMAX_S
  | FCVT_W_S | FCVT_WU_S | FCVT_L_S | FCVT_LU_S | FMV_X_W
  | FEQ_S | FLT_S | FLE_S | FCLASS_S
  | FMADD_D | FMSUB_D | FNMSUB_D | FNMADD_D
  | FADD_D | FSUB_D | FMUL_D | FDIV_D | FSQRT_D
  | FSGNJ_D | FSGNJN_D | FSGNJX_D | FMIN_D | FMAX_D
  | FCVT_S_D | FCVT_D_S | FCVT_W_D | FCVT_WU_D | FCVT_L_D | FCVT_LU_D
  | FMV_X_D | FEQ_D | FLT_D | FLE_D | FCLASS_D -> true
  | _ -> false

let rs2_is_fp = function
  | FSW | FSD
  | FMADD_S | FMSUB_S | FNMSUB_S | FNMADD_S
  | FADD_S | FSUB_S | FMUL_S | FDIV_S
  | FSGNJ_S | FSGNJN_S | FSGNJX_S | FMIN_S | FMAX_S
  | FEQ_S | FLT_S | FLE_S
  | FMADD_D | FMSUB_D | FNMSUB_D | FNMADD_D
  | FADD_D | FSUB_D | FMUL_D | FDIV_D
  | FSGNJ_D | FSGNJN_D | FSGNJX_D | FMIN_D | FMAX_D
  | FEQ_D | FLT_D | FLE_D -> true
  | _ -> false

(* rs3 only exists for the fused multiply-adds, always FP. *)
let has_rs3 = function
  | FMADD_S | FMSUB_S | FNMSUB_S | FNMADD_S
  | FMADD_D | FMSUB_D | FNMSUB_D | FNMADD_D -> true
  | _ -> false

(* Does the op write the FP flags (fcsr)?  Conservative list used by
   liveness. *)
let writes_fcsr = function
  | FADD_S | FSUB_S | FMUL_S | FDIV_S | FSQRT_S
  | FMADD_S | FMSUB_S | FNMSUB_S | FNMADD_S
  | FMIN_S | FMAX_S | FEQ_S | FLT_S | FLE_S
  | FCVT_W_S | FCVT_WU_S | FCVT_L_S | FCVT_LU_S
  | FCVT_S_W | FCVT_S_WU | FCVT_S_L | FCVT_S_LU
  | FADD_D | FSUB_D | FMUL_D | FDIV_D | FSQRT_D
  | FMADD_D | FMSUB_D | FNMSUB_D | FNMADD_D
  | FMIN_D | FMAX_D | FEQ_D | FLT_D | FLE_D
  | FCVT_W_D | FCVT_WU_D | FCVT_L_D | FCVT_LU_D
  | FCVT_D_W | FCVT_D_WU | FCVT_D_L | FCVT_D_LU
  | FCVT_S_D | FCVT_D_S -> true
  | _ -> false

let pp fmt op = Format.pp_print_string fmt (mnemonic op)
