(** A small two-pass assembler over {!Insn.t} streams with labels, used to
    build mutatee code (the mini-C backend, tests) and instrumentation
    trampolines.

    Label-relative items relax iteratively, mirroring the compiler
    behaviour the paper describes (§3.2.3): conditional branches grow
    from a 4-byte branch to an inverted branch over a [jal] (8 bytes) and
    finally over an [auipc+jalr] pair (12 bytes, clobbering t1); jumps
    and calls grow from [jal] to [auipc+jalr]. *)

type item =
  | Insn of Insn.t  (** a fixed instruction (always emitted uncompressed) *)
  | Label of string
  | Br of Op.t * Reg.t * Reg.t * string  (** conditional branch to label *)
  | J of string  (** jal x0, label *)
  | Call_l of string  (** call: jal ra, relaxing to auipc+jalr *)
  | Tail_l of string  (** tail call: jal x0, relaxing to auipc+jalr *)
  | La of Reg.t * string  (** load address, pc-relative auipc+addi *)
  | Li of Reg.t * int64  (** load immediate via {!Build.li} expansion *)
  | Raw of string  (** literal bytes *)
  | D8 of int
  | D32 of int32
  | D64 of int64
  | Align of int

exception Undefined_label of string

(** Split a pc-relative offset into the (hi20, lo12) pair used by
    auipc/addi and auipc/jalr sequences. *)
val pcrel_hi_lo : int64 -> int * int

type result = {
  code : Bytes.t;
  labels : (string * int64) list;  (** label -> absolute address *)
}

(** Assemble [items] for load address [base].  [symbols] resolves labels
    defined elsewhere (data objects, absolute "@hex" trampoline targets).
    @raise Undefined_label when neither local labels nor [symbols] know a
    name. *)
val assemble :
  ?base:int64 -> ?symbols:(string -> int64 option) -> item list -> result

(** Address of a label in an assembly result.
    @raise Undefined_label if absent. *)
val label_addr : result -> string -> int64
