(* RV64GC instruction decoder.

   The 32-bit decoder is table-driven from [Op.table]: each encoding row
   yields a (mask, bits) pair; rows are bucketed by the 7-bit major
   opcode.  The 16-bit (C extension) decoder expands each compressed
   instruction into its base equivalent with [len = 2], per paper §3.1.2. *)

open Dyn_util

let sx = Bits.sign_extend
let ex = Bits.extract

(* mask/match-bits pair for an encoding row. *)
let mask_bits = function
  | Op.R (opc, f3, f7) -> (0xFE00707F, (f7 lsl 25) lor (f3 lsl 12) lor opc)
  | Op.R_rs2 (opc, f3, f7, rs2) ->
      (0xFFF0707F, (f7 lsl 25) lor (rs2 lsl 20) lor (f3 lsl 12) lor opc)
  | Op.R_rm (opc, f7) -> (0xFE00007F, (f7 lsl 25) lor opc)
  | Op.R_rm_rs2 (opc, f7, rs2) ->
      (0xFFF0007F, (f7 lsl 25) lor (rs2 lsl 20) lor opc)
  | Op.R4 (opc, f2) -> (0x0600007F, (f2 lsl 25) lor opc)
  | Op.A (f3, f5) -> (0xF800707F, (f5 lsl 27) lor (f3 lsl 12) lor 0x2F)
  | Op.I (opc, f3) -> (0x0000707F, (f3 lsl 12) lor opc)
  | Op.Sh (opc, f3, f6) -> (0xFC00707F, (f6 lsl 26) lor (f3 lsl 12) lor opc)
  | Op.Sh5 (opc, f3, f7) -> (0xFE00707F, (f7 lsl 25) lor (f3 lsl 12) lor opc)
  | Op.S (opc, f3) -> (0x0000707F, (f3 lsl 12) lor opc)
  | Op.B f3 -> (0x0000707F, (f3 lsl 12) lor 0x63)
  | Op.U opc -> (0x0000007F, opc)
  | Op.J opc -> (0x0000007F, opc)
  | Op.Fence -> (0x0000707F, 0x0F)
  | Op.Fixed w -> (0xFFFFFFFF, w)
  | Op.Csr f3 -> (0x0000707F, (f3 lsl 12) lor 0x73)
  | Op.Csri f3 -> (0x0000707F, (f3 lsl 12) lor 0x73)

(* Decode buckets: major opcode -> rows ordered most-specific first. *)
let buckets =
  let h = Hashtbl.create 64 in
  let popcount x =
    let rec go x acc = if x = 0 then acc else go (x lsr 1) (acc + (x land 1)) in
    go x 0
  in
  let rows =
    List.map
      (fun (op, _, _, enc) ->
        let mask, bits = mask_bits enc in
        (mask, bits, op, enc))
      Op.table
  in
  let rows =
    List.sort
      (fun (m1, _, _, _) (m2, _, _, _) -> compare (popcount m2) (popcount m1))
      rows
  in
  List.iter
    (fun ((_, bits, _, _) as row) ->
      let opc = bits land 0x7F in
      let cur = try Hashtbl.find h opc with Not_found -> [] in
      Hashtbl.replace h opc (cur @ [ row ]))
    rows;
  h

(* Field extraction for a matched row. *)
let fill op enc w =
  let rd = ex w 7 5 and rs1 = ex w 15 5 and rs2 = ex w 20 5 in
  let i = Insn.make ~raw:w ~len:4 op in
  match enc with
  | Op.R _ -> { i with rd; rs1; rs2 }
  | Op.R_rs2 _ -> { i with rd; rs1 }
  | Op.R_rm _ -> { i with rd; rs1; rs2; rm = ex w 12 3 }
  | Op.R_rm_rs2 _ -> { i with rd; rs1; rm = ex w 12 3 }
  | Op.R4 _ -> { i with rd; rs1; rs2; rs3 = ex w 27 5; rm = ex w 12 3 }
  | Op.A _ ->
      { i with rd; rs1; rs2; aq = Bits.test_bit w 26; rl = Bits.test_bit w 25 }
  | Op.I _ -> { i with rd; rs1; imm = Int64.of_int (sx (ex w 20 12) 12) }
  | Op.Sh _ -> { i with rd; rs1; imm = Int64.of_int (ex w 20 6) }
  | Op.Sh5 _ -> { i with rd; rs1; imm = Int64.of_int (ex w 20 5) }
  | Op.S _ ->
      let imm = sx ((ex w 25 7 lsl 5) lor ex w 7 5) 12 in
      { i with rs1; rs2; imm = Int64.of_int imm }
  | Op.B _ ->
      let imm =
        sx
          ((ex w 31 1 lsl 12) lor (ex w 7 1 lsl 11) lor (ex w 25 6 lsl 5)
          lor (ex w 8 4 lsl 1))
          13
      in
      { i with rs1; rs2; imm = Int64.of_int imm }
  | Op.U _ -> { i with rd; imm = Int64.of_int (sx (w land 0xFFFFF000) 32) }
  | Op.J _ ->
      let imm =
        sx
          ((ex w 31 1 lsl 20) lor (ex w 12 8 lsl 12) lor (ex w 20 1 lsl 11)
          lor (ex w 21 10 lsl 1))
          21
      in
      { i with rd; imm = Int64.of_int imm }
  | Op.Fence -> { i with rd; rs1; imm = Int64.of_int (ex w 20 12) }
  | Op.Fixed _ -> i
  | Op.Csr _ -> { i with rd; rs1; csr = ex w 20 12 }
  | Op.Csri _ -> { i with rd; rs1; csr = ex w 20 12 (* rs1 is zimm *) }

let decode_word w =
  let w = w land 0xFFFFFFFF in
  let opc = w land 0x7F in
  match Hashtbl.find_opt buckets opc with
  | None -> None
  | Some rows ->
      let rec try_rows = function
        | [] -> None
        | (mask, bits, op, enc) :: rest ->
            if w land mask = bits then Some (fill op enc w) else try_rows rest
      in
      try_rows rows

(* --- Compressed (RVC, RV64) decoder ----------------------------------- *)

(* rd'/rs' 3-bit register fields map to x8..x15 / f8..f15. *)
let cr r3 = r3 + 8

let c_insn ?(rd = 0) ?(rs1 = 0) ?(rs2 = 0) ?(imm = 0L) ~raw op =
  Insn.make ~rd ~rs1 ~rs2 ~imm ~len:2 ~raw op

let decode_compressed w =
  let w = w land 0xFFFF in
  if w = 0 then None (* defined illegal instruction *)
  else
    let quad = w land 0x3 and f3 = ex w 13 3 in
    let bit b = ex w b 1 in
    match (quad, f3) with
    | 0, 0 ->
        (* c.addi4spn: addi rd', x2, nzuimm *)
        let imm =
          (ex w 7 4 lsl 6) lor (ex w 11 2 lsl 4) lor (bit 5 lsl 3)
          lor (bit 6 lsl 2)
        in
        if imm = 0 then None
        else
          Some (c_insn ~rd:(cr (ex w 2 3)) ~rs1:2 ~imm:(Int64.of_int imm) ~raw:w Op.ADDI)
    | 0, 1 ->
        (* c.fld *)
        let imm = (ex w 10 3 lsl 3) lor (ex w 5 2 lsl 6) in
        Some (c_insn ~rd:(cr (ex w 2 3)) ~rs1:(cr (ex w 7 3)) ~imm:(Int64.of_int imm) ~raw:w Op.FLD)
    | 0, 2 ->
        (* c.lw *)
        let imm = (ex w 10 3 lsl 3) lor (bit 6 lsl 2) lor (bit 5 lsl 6) in
        Some (c_insn ~rd:(cr (ex w 2 3)) ~rs1:(cr (ex w 7 3)) ~imm:(Int64.of_int imm) ~raw:w Op.LW)
    | 0, 3 ->
        (* c.ld (RV64) *)
        let imm = (ex w 10 3 lsl 3) lor (ex w 5 2 lsl 6) in
        Some (c_insn ~rd:(cr (ex w 2 3)) ~rs1:(cr (ex w 7 3)) ~imm:(Int64.of_int imm) ~raw:w Op.LD)
    | 0, 5 ->
        (* c.fsd *)
        let imm = (ex w 10 3 lsl 3) lor (ex w 5 2 lsl 6) in
        Some (c_insn ~rs1:(cr (ex w 7 3)) ~rs2:(cr (ex w 2 3)) ~imm:(Int64.of_int imm) ~raw:w Op.FSD)
    | 0, 6 ->
        (* c.sw *)
        let imm = (ex w 10 3 lsl 3) lor (bit 6 lsl 2) lor (bit 5 lsl 6) in
        Some (c_insn ~rs1:(cr (ex w 7 3)) ~rs2:(cr (ex w 2 3)) ~imm:(Int64.of_int imm) ~raw:w Op.SW)
    | 0, 7 ->
        (* c.sd *)
        let imm = (ex w 10 3 lsl 3) lor (ex w 5 2 lsl 6) in
        Some (c_insn ~rs1:(cr (ex w 7 3)) ~rs2:(cr (ex w 2 3)) ~imm:(Int64.of_int imm) ~raw:w Op.SD)
    | 1, 0 ->
        (* c.addi / c.nop *)
        let rd = ex w 7 5 in
        let imm = sx ((bit 12 lsl 5) lor ex w 2 5) 6 in
        Some (c_insn ~rd ~rs1:rd ~imm:(Int64.of_int imm) ~raw:w Op.ADDI)
    | 1, 1 ->
        (* c.addiw (RV64) *)
        let rd = ex w 7 5 in
        if rd = 0 then None
        else
          let imm = sx ((bit 12 lsl 5) lor ex w 2 5) 6 in
          Some (c_insn ~rd ~rs1:rd ~imm:(Int64.of_int imm) ~raw:w Op.ADDIW)
    | 1, 2 ->
        (* c.li: addi rd, x0, imm *)
        let rd = ex w 7 5 in
        let imm = sx ((bit 12 lsl 5) lor ex w 2 5) 6 in
        Some (c_insn ~rd ~rs1:0 ~imm:(Int64.of_int imm) ~raw:w Op.ADDI)
    | 1, 3 ->
        let rd = ex w 7 5 in
        if rd = 2 then begin
          (* c.addi16sp *)
          let imm =
            sx
              ((bit 12 lsl 9) lor (bit 6 lsl 4) lor (bit 5 lsl 6)
              lor (ex w 3 2 lsl 7) lor (bit 2 lsl 5))
              10
          in
          if imm = 0 then None
          else Some (c_insn ~rd:2 ~rs1:2 ~imm:(Int64.of_int imm) ~raw:w Op.ADDI)
        end
        else begin
          (* c.lui *)
          let imm = sx ((bit 12 lsl 17) lor (ex w 2 5 lsl 12)) 18 in
          if imm = 0 || rd = 0 then None
          else Some (c_insn ~rd ~imm:(Int64.of_int imm) ~raw:w Op.LUI)
        end
    | 1, 4 -> (
        let rs1 = cr (ex w 7 3) in
        match ex w 10 2 with
        | 0 ->
            let sh = (bit 12 lsl 5) lor ex w 2 5 in
            Some (c_insn ~rd:rs1 ~rs1 ~imm:(Int64.of_int sh) ~raw:w Op.SRLI)
        | 1 ->
            let sh = (bit 12 lsl 5) lor ex w 2 5 in
            Some (c_insn ~rd:rs1 ~rs1 ~imm:(Int64.of_int sh) ~raw:w Op.SRAI)
        | 2 ->
            let imm = sx ((bit 12 lsl 5) lor ex w 2 5) 6 in
            Some (c_insn ~rd:rs1 ~rs1 ~imm:(Int64.of_int imm) ~raw:w Op.ANDI)
        | _ -> (
            let rs2 = cr (ex w 2 3) in
            match (bit 12, ex w 5 2) with
            | 0, 0 -> Some (c_insn ~rd:rs1 ~rs1 ~rs2 ~raw:w Op.SUB)
            | 0, 1 -> Some (c_insn ~rd:rs1 ~rs1 ~rs2 ~raw:w Op.XOR)
            | 0, 2 -> Some (c_insn ~rd:rs1 ~rs1 ~rs2 ~raw:w Op.OR)
            | 0, 3 -> Some (c_insn ~rd:rs1 ~rs1 ~rs2 ~raw:w Op.AND)
            | 1, 0 -> Some (c_insn ~rd:rs1 ~rs1 ~rs2 ~raw:w Op.SUBW)
            | 1, 1 -> Some (c_insn ~rd:rs1 ~rs1 ~rs2 ~raw:w Op.ADDW)
            | _ -> None))
    | 1, 5 ->
        (* c.j: jal x0, imm *)
        let imm =
          sx
            ((bit 12 lsl 11) lor (bit 11 lsl 4) lor (ex w 9 2 lsl 8)
            lor (bit 8 lsl 10) lor (bit 7 lsl 6) lor (bit 6 lsl 7)
            lor (ex w 3 3 lsl 1) lor (bit 2 lsl 5))
            12
        in
        Some (c_insn ~rd:0 ~imm:(Int64.of_int imm) ~raw:w Op.JAL)
    | 1, 6 | 1, 7 ->
        (* c.beqz / c.bnez *)
        let imm =
          sx
            ((bit 12 lsl 8) lor (ex w 10 2 lsl 3) lor (ex w 5 2 lsl 6)
            lor (ex w 3 2 lsl 1) lor (bit 2 lsl 5))
            9
        in
        let op = if f3 = 6 then Op.BEQ else Op.BNE in
        Some (c_insn ~rs1:(cr (ex w 7 3)) ~rs2:0 ~imm:(Int64.of_int imm) ~raw:w op)
    | 2, 0 ->
        (* c.slli *)
        let rd = ex w 7 5 in
        let sh = (bit 12 lsl 5) lor ex w 2 5 in
        if rd = 0 then None
        else Some (c_insn ~rd ~rs1:rd ~imm:(Int64.of_int sh) ~raw:w Op.SLLI)
    | 2, 1 ->
        (* c.fldsp *)
        let rd = ex w 7 5 in
        let imm = (bit 12 lsl 5) lor (ex w 5 2 lsl 3) lor (ex w 2 3 lsl 6) in
        Some (c_insn ~rd ~rs1:2 ~imm:(Int64.of_int imm) ~raw:w Op.FLD)
    | 2, 2 ->
        (* c.lwsp *)
        let rd = ex w 7 5 in
        if rd = 0 then None
        else
          let imm = (bit 12 lsl 5) lor (ex w 4 3 lsl 2) lor (ex w 2 2 lsl 6) in
          Some (c_insn ~rd ~rs1:2 ~imm:(Int64.of_int imm) ~raw:w Op.LW)
    | 2, 3 ->
        (* c.ldsp *)
        let rd = ex w 7 5 in
        if rd = 0 then None
        else
          let imm = (bit 12 lsl 5) lor (ex w 5 2 lsl 3) lor (ex w 2 3 lsl 6) in
          Some (c_insn ~rd ~rs1:2 ~imm:(Int64.of_int imm) ~raw:w Op.LD)
    | 2, 4 -> (
        let rs1 = ex w 7 5 and rs2 = ex w 2 5 in
        match (bit 12, rs1, rs2) with
        | 0, 0, _ -> None
        | 0, _, 0 -> Some (c_insn ~rd:0 ~rs1 ~raw:w Op.JALR) (* c.jr *)
        | 0, _, _ -> Some (c_insn ~rd:rs1 ~rs1:0 ~rs2 ~raw:w Op.ADD) (* c.mv *)
        | 1, 0, 0 -> Some (c_insn ~raw:w Op.EBREAK)
        | 1, _, 0 -> Some (c_insn ~rd:1 ~rs1 ~raw:w Op.JALR) (* c.jalr *)
        | 1, _, _ -> Some (c_insn ~rd:rs1 ~rs1 ~rs2 ~raw:w Op.ADD) (* c.add *)
        | _ -> None)
    | 2, 5 ->
        (* c.fsdsp *)
        let imm = (ex w 10 3 lsl 3) lor (ex w 7 3 lsl 6) in
        Some (c_insn ~rs1:2 ~rs2:(ex w 2 5) ~imm:(Int64.of_int imm) ~raw:w Op.FSD)
    | 2, 6 ->
        (* c.swsp *)
        let imm = (ex w 9 4 lsl 2) lor (ex w 7 2 lsl 6) in
        Some (c_insn ~rs1:2 ~rs2:(ex w 2 5) ~imm:(Int64.of_int imm) ~raw:w Op.SW)
    | 2, 7 ->
        (* c.sdsp *)
        let imm = (ex w 10 3 lsl 3) lor (ex w 7 3 lsl 6) in
        Some (c_insn ~rs1:2 ~rs2:(ex w 2 5) ~imm:(Int64.of_int imm) ~raw:w Op.SD)
    | _ -> None

(* Instruction length from the first half-word: 32-bit iff low 2 bits are
   both set (longer encodings are out of scope for RV64GC). *)
let length_of_halfword hw = if hw land 0x3 = 0x3 then 4 else 2

(* Decode from a byte sequence at [pos].  Returns [None] on undecodable
   bytes or truncation. *)
let decode ?(pos = 0) (b : Bytes.t) =
  if pos + 2 > Bytes.length b then None
  else
    let hw = Bytes.get_uint16_le b pos in
    if length_of_halfword hw = 2 then decode_compressed hw
    else if pos + 4 > Bytes.length b then None
    else
      let w =
        hw lor (Bytes.get_uint16_le b (pos + 2) lsl 16)
      in
      decode_word w
