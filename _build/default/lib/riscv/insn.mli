(** A decoded RISC-V instruction.

    Register fields hold raw 5-bit indices; whether a field names an
    integer or FP register is a property of the opcode (see
    {!Op.rd_is_fp} and friends).  Compressed instructions are expanded to
    their base opcode with [len = 2] (paper §3.1.2). *)

type t = {
  op : Op.t;
  rd : int;
  rs1 : int;
  rs2 : int;
  rs3 : int;  (** fused multiply-adds only *)
  imm : int64;  (** sign-extended immediate / branch offset / shamt *)
  csr : int;  (** CSR address for Zicsr ops *)
  rm : int;  (** FP rounding-mode field *)
  aq : bool;  (** atomics ordering bits *)
  rl : bool;
  len : int;  (** 2 (compressed encoding) or 4 *)
  raw : int;  (** original encoding bits *)
}

(** Build an instruction with sensible defaults (fields 0, [rm] = DYN,
    [len] = 4). *)
val make :
  ?rd:int -> ?rs1:int -> ?rs2:int -> ?rs3:int -> ?imm:int64 -> ?csr:int ->
  ?rm:int -> ?aq:bool -> ?rl:bool -> ?len:int -> ?raw:int -> Op.t -> t

val imm_int : t -> int

(** Registers written, as flat {!Reg.t} ids; writes to x0 are discarded,
    and ops that set the FP flags also def {!Reg.fcsr}. *)
val defs : t -> Reg.t list

(** Registers read, as flat {!Reg.t} ids (x0 reads omitted). *)
val uses : t -> Reg.t list

(** Direct target of jal / conditional branches at address [addr]. *)
val target : addr:int64 -> t -> int64 option

(** Fallthrough address. *)
val next : addr:int64 -> t -> int64

(** The canonical return idiom [jalr x0, 0(ra)] (the full contextual
    return classification lives in ParseAPI). *)
val is_ret : t -> bool

val pp_operands : Format.formatter -> t -> unit
val pp : Format.formatter -> t -> unit
val to_string : t -> string
