(* The RISC-V extension model (paper §3.1.1).

   A binary is compiled against a set of extensions; Dyninst must not
   generate instrumentation using instructions from extensions the
   mutatee's processor may lack.  A [profile] is the set of extensions a
   processor implements; SymtabAPI discovers the mutatee's profile from
   .riscv.attributes or e_flags, and CodeGenAPI consults it. *)

type t =
  | I        (* base integer *)
  | M        (* integer multiply/divide *)
  | A        (* atomics *)
  | F        (* single-precision floating point *)
  | D        (* double-precision floating point *)
  | C        (* compressed instructions *)
  | Zicsr    (* CSR instructions *)
  | Zifencei (* instruction-fetch fence *)
  | Zba      (* address generation (future-work placeholder) *)
  | Zbb      (* basic bit manipulation (future-work placeholder) *)
  | V        (* vector (RVA23 future work, not yet generated) *)
  | Zicond   (* integer conditional (RVA23 future work) *)

let all = [ I; M; A; F; D; C; Zicsr; Zifencei; Zba; Zbb; V; Zicond ]

let name = function
  | I -> "i"
  | M -> "m"
  | A -> "a"
  | F -> "f"
  | D -> "d"
  | C -> "c"
  | Zicsr -> "zicsr"
  | Zifencei -> "zifencei"
  | Zba -> "zba"
  | Zbb -> "zbb"
  | V -> "v"
  | Zicond -> "zicond"

let of_name s =
  match String.lowercase_ascii s with
  | "i" -> Some I
  | "m" -> Some M
  | "a" -> Some A
  | "f" -> Some F
  | "d" -> Some D
  | "c" -> Some C
  | "g" -> None (* G is a shorthand handled by [parse_arch_string] *)
  | "zicsr" -> Some Zicsr
  | "zifencei" -> Some Zifencei
  | "zba" -> Some Zba
  | "zbb" -> Some Zbb
  | "v" -> Some V
  | "zicond" -> Some Zicond
  | _ -> None

module Set = struct
  include Set.Make (struct
    type nonrec t = t

    let compare = compare
  end)
end

type profile = { xlen : int; exts : Set.t }

let g_exts = [ I; M; A; F; D; Zicsr; Zifencei ]
let rv64g = { xlen = 64; exts = Set.of_list g_exts }
let rv64gc = { xlen = 64; exts = Set.of_list (C :: g_exts) }
let rv64i = { xlen = 64; exts = Set.singleton I }

(* The RVA23 application profile adds (among much else) vector and
   integer-conditional extensions; modelled here for future-work tests. *)
let rva23 = { xlen = 64; exts = Set.of_list (C :: V :: Zicond :: Zba :: Zbb :: g_exts) }

let supports p e = Set.mem e p.exts
let equal_profile a b = a.xlen = b.xlen && Set.equal a.exts b.exts
let with_ext p e = { p with exts = Set.add e p.exts }
let without_ext p e = { p with exts = Set.remove e p.exts }

(* Parse an ISA string of the form "rv64imafdc_zicsr_zifencei" as found in
   the Tag_RISCV_arch attribute of .riscv.attributes.  Version suffixes
   like "2p1" are accepted and ignored.  Unknown multi-letter extensions
   are skipped (the binary may use extensions newer than this tool). *)
let parse_arch_string s =
  let s = String.lowercase_ascii (String.trim s) in
  let fail msg = Error (Printf.sprintf "bad arch string %S: %s" s msg) in
  if String.length s < 4 then fail "too short"
  else if not (String.length s >= 2 && String.sub s 0 2 = "rv") then
    fail "must start with rv"
  else
    let xlen_digits =
      let rec go i = if i < String.length s && s.[i] >= '0' && s.[i] <= '9' then go (i + 1) else i in
      go 2
    in
    match int_of_string_opt (String.sub s 2 (xlen_digits - 2)) with
    | None -> fail "missing XLEN"
    | Some xlen when xlen <> 32 && xlen <> 64 -> fail "unsupported XLEN"
    | Some xlen ->
        (* strip a version like 2p1 directly following a letter *)
        let skip_version i =
          let n = String.length s in
          let rec digits i = if i < n && s.[i] >= '0' && s.[i] <= '9' then digits (i + 1) else i in
          let j = digits i in
          if j < n && s.[j] = 'p' then digits (j + 1) else j
        in
        let exts = ref Set.empty in
        let add e = exts := Set.add e !exts in
        let n = String.length s in
        let rec go i =
          if i >= n then Ok { xlen; exts = !exts }
          else if s.[i] = '_' then go (i + 1)
          else if s.[i] = 'z' || s.[i] = 's' || s.[i] = 'x' then begin
            (* multi-letter extension: runs to the next '_' or end *)
            let j =
              match String.index_from_opt s i '_' with Some j -> j | None -> n
            in
            (* trim a trailing version *)
            let word = String.sub s i (j - i) in
            let word =
              let k = ref (String.length word) in
              while
                !k > 0
                && (word.[!k - 1] >= '0' && word.[!k - 1] <= '9' || word.[!k - 1] = 'p')
              do
                decr k
              done;
              String.sub word 0 !k
            in
            (match of_name word with Some e -> add e | None -> ());
            go j
          end
          else begin
            (match s.[i] with
            | 'g' -> List.iter add g_exts
            | c -> (
                match of_name (String.make 1 c) with
                | Some e -> add e
                | None -> () (* unknown single-letter ext: skip *)));
            go (skip_version (i + 1))
          end
        in
        go xlen_digits

(* Canonical printing, e.g. "rv64imafdc_zicsr_zifencei". *)
let arch_string p =
  let single, multi =
    List.partition (fun e -> String.length (name e) = 1) (Set.elements p.exts)
  in
  let order = [ I; M; A; F; D; C; V ] in
  let singles =
    List.filter (fun e -> List.mem e single) order
    |> List.map name |> String.concat ""
  in
  let multis = List.map name multi in
  String.concat "_" ((Printf.sprintf "rv%d%s" p.xlen singles) :: multis)

let pp_profile fmt p = Format.pp_print_string fmt (arch_string p)
