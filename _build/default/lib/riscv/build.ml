(* Smart constructors for [Insn.t] values, used by the assembler, the
   code generator and the tests.  Register arguments are [Reg.t] flat ids
   (so FP registers can be passed directly); they are converted to the
   raw 5-bit field values here. *)

let ri r = if Reg.is_fp r then Reg.fp_index r else r

let r3 op rd rs1 rs2 = Insn.make ~rd:(ri rd) ~rs1:(ri rs1) ~rs2:(ri rs2) op
let r2 op rd rs1 = Insn.make ~rd:(ri rd) ~rs1:(ri rs1) op
let i12 op rd rs1 imm = Insn.make ~rd:(ri rd) ~rs1:(ri rs1) ~imm:(Int64.of_int imm) op

let add rd rs1 rs2 = r3 Op.ADD rd rs1 rs2
let sub rd rs1 rs2 = r3 Op.SUB rd rs1 rs2
let mul rd rs1 rs2 = r3 Op.MUL rd rs1 rs2
let mulw rd rs1 rs2 = r3 Op.MULW rd rs1 rs2
let div rd rs1 rs2 = r3 Op.DIV rd rs1 rs2
let divu rd rs1 rs2 = r3 Op.DIVU rd rs1 rs2
let rem rd rs1 rs2 = r3 Op.REM rd rs1 rs2
let sll rd rs1 rs2 = r3 Op.SLL rd rs1 rs2
let srl rd rs1 rs2 = r3 Op.SRL rd rs1 rs2
let sra rd rs1 rs2 = r3 Op.SRA rd rs1 rs2
let slt rd rs1 rs2 = r3 Op.SLT rd rs1 rs2
let sltu rd rs1 rs2 = r3 Op.SLTU rd rs1 rs2
let xor rd rs1 rs2 = r3 Op.XOR rd rs1 rs2
let or_ rd rs1 rs2 = r3 Op.OR rd rs1 rs2
let and_ rd rs1 rs2 = r3 Op.AND rd rs1 rs2
let addw rd rs1 rs2 = r3 Op.ADDW rd rs1 rs2
let subw rd rs1 rs2 = r3 Op.SUBW rd rs1 rs2

let addi rd rs1 imm = i12 Op.ADDI rd rs1 imm
let addiw rd rs1 imm = i12 Op.ADDIW rd rs1 imm
let slti rd rs1 imm = i12 Op.SLTI rd rs1 imm
let sltiu rd rs1 imm = i12 Op.SLTIU rd rs1 imm
let xori rd rs1 imm = i12 Op.XORI rd rs1 imm
let ori rd rs1 imm = i12 Op.ORI rd rs1 imm
let andi rd rs1 imm = i12 Op.ANDI rd rs1 imm
let slli rd rs1 sh = i12 Op.SLLI rd rs1 sh
let srli rd rs1 sh = i12 Op.SRLI rd rs1 sh
let srai rd rs1 sh = i12 Op.SRAI rd rs1 sh
let slliw rd rs1 sh = i12 Op.SLLIW rd rs1 sh

let lui rd imm20 =
  (* [imm20] is the value to place in bits 31:12 *)
  Insn.make ~rd:(ri rd)
    ~imm:(Int64.of_int (Dyn_util.Bits.sign_extend (imm20 lsl 12) 32))
    Op.LUI

let auipc rd imm20 =
  Insn.make ~rd:(ri rd)
    ~imm:(Int64.of_int (Dyn_util.Bits.sign_extend (imm20 lsl 12) 32))
    Op.AUIPC

let jal rd off = Insn.make ~rd:(ri rd) ~imm:(Int64.of_int off) Op.JAL
let jalr rd rs1 imm = i12 Op.JALR rd rs1 imm

let beq rs1 rs2 off = Insn.make ~rs1:(ri rs1) ~rs2:(ri rs2) ~imm:(Int64.of_int off) Op.BEQ
let bne rs1 rs2 off = Insn.make ~rs1:(ri rs1) ~rs2:(ri rs2) ~imm:(Int64.of_int off) Op.BNE
let blt rs1 rs2 off = Insn.make ~rs1:(ri rs1) ~rs2:(ri rs2) ~imm:(Int64.of_int off) Op.BLT
let bge rs1 rs2 off = Insn.make ~rs1:(ri rs1) ~rs2:(ri rs2) ~imm:(Int64.of_int off) Op.BGE
let bltu rs1 rs2 off = Insn.make ~rs1:(ri rs1) ~rs2:(ri rs2) ~imm:(Int64.of_int off) Op.BLTU
let bgeu rs1 rs2 off = Insn.make ~rs1:(ri rs1) ~rs2:(ri rs2) ~imm:(Int64.of_int off) Op.BGEU

let load op rd off rs1 = Insn.make ~rd:(ri rd) ~rs1:(ri rs1) ~imm:(Int64.of_int off) op
let store op rs2 off rs1 = Insn.make ~rs2:(ri rs2) ~rs1:(ri rs1) ~imm:(Int64.of_int off) op

let lb rd off rs1 = load Op.LB rd off rs1
let lbu rd off rs1 = load Op.LBU rd off rs1
let lh rd off rs1 = load Op.LH rd off rs1
let lw rd off rs1 = load Op.LW rd off rs1
let lwu rd off rs1 = load Op.LWU rd off rs1
let ld rd off rs1 = load Op.LD rd off rs1
let sb rs2 off rs1 = store Op.SB rs2 off rs1
let sh rs2 off rs1 = store Op.SH rs2 off rs1
let sw rs2 off rs1 = store Op.SW rs2 off rs1
let sd rs2 off rs1 = store Op.SD rs2 off rs1
let fld frd off rs1 = load Op.FLD frd off rs1
let fsd frs2 off rs1 = store Op.FSD frs2 off rs1
let flw frd off rs1 = load Op.FLW frd off rs1
let fsw frs2 off rs1 = store Op.FSW frs2 off rs1

let fop op frd frs1 frs2 =
  Insn.make ~rd:(ri frd) ~rs1:(ri frs1) ~rs2:(ri frs2) ~rm:7 op

let fadd_d a b c = fop Op.FADD_D a b c
let fsub_d a b c = fop Op.FSUB_D a b c
let fmul_d a b c = fop Op.FMUL_D a b c
let fdiv_d a b c = fop Op.FDIV_D a b c

let fmadd_d frd frs1 frs2 frs3 =
  Insn.make ~rd:(ri frd) ~rs1:(ri frs1) ~rs2:(ri frs2) ~rs3:(ri frs3) ~rm:7
    Op.FMADD_D

let fmv_d_x frd rs1 = r2 Op.FMV_D_X frd rs1
let fmv_x_d rd frs1 = r2 Op.FMV_X_D rd frs1
let fcvt_d_l frd rs1 = Insn.make ~rd:(ri frd) ~rs1:(ri rs1) ~rm:7 Op.FCVT_D_L
let fcvt_l_d rd frs1 = Insn.make ~rd:(ri rd) ~rs1:(ri frs1) ~rm:1 Op.FCVT_L_D
let feq_d rd frs1 frs2 = fop Op.FEQ_D rd frs1 frs2
let flt_d rd frs1 frs2 = fop Op.FLT_D rd frs1 frs2
let fle_d rd frs1 frs2 = fop Op.FLE_D rd frs1 frs2
let fsgnj_d frd frs1 frs2 = Insn.make ~rd:(ri frd) ~rs1:(ri frs1) ~rs2:(ri frs2) Op.FSGNJ_D
let fmv_d frd frs1 = fsgnj_d frd frs1 frs1

(* Pseudo-instructions *)
let nop = addi Reg.zero Reg.zero 0
let mv rd rs = addi rd rs 0
let neg rd rs = sub rd Reg.zero rs
let not_ rd rs = xori rd rs (-1)
let seqz rd rs = sltiu rd rs 1
let snez rd rs = sltu rd Reg.zero rs
let j off = jal Reg.zero off
let jr rs = jalr Reg.zero rs 0
let ret = jalr Reg.zero Reg.ra 0
let call_reg rs = jalr Reg.ra rs 0
let ecall = Insn.make Op.ECALL
let ebreak = Insn.make Op.EBREAK
let csrrs rd csr rs1 = Insn.make ~rd:(ri rd) ~rs1:(ri rs1) ~csr Op.CSRRS
let rdcycle rd = csrrs rd 0xC00 Reg.zero
let rdtime rd = csrrs rd 0xC01 Reg.zero
let rdinstret rd = csrrs rd 0xC02 Reg.zero

(* Materialize an arbitrary 64-bit constant into [rd].
   Standard recursive lui/addiw + slli/addi expansion. *)
let li rd (v : int64) =
  let open Dyn_util in
  let rec expand v =
    if Bits.fits_signed v 12 then [ addi rd Reg.zero (Int64.to_int v) ]
    else if Bits.fits_signed v 32 then begin
      let lo = Bits.sign_extend (Int64.to_int (Int64.logand v 0xFFFL)) 12 in
      let hi20 =
        Int64.to_int (Int64.shift_right (Int64.sub v (Int64.of_int lo)) 12)
        land 0xFFFFF
      in
      let lui_i = lui rd hi20 in
      if lo = 0 then [ lui_i ] else [ lui_i; addiw rd rd lo ]
    end
    else begin
      (* peel 12 low bits, shift, recurse on the high part *)
      let lo = Bits.sign_extend (Int64.to_int (Int64.logand v 0xFFFL)) 12 in
      let hi = Int64.shift_right (Int64.sub v (Int64.of_int lo)) 12 in
      let rest = expand hi in
      rest @ [ slli rd rd 12 ] @ if lo = 0 then [] else [ addi rd rd lo ]
    end
  in
  expand v
