(* Bit-manipulation helpers for the Zba/Zbb extensions, shared between
   the simulator and the semantics evaluator (like Fpu, so the two stay
   bit-for-bit identical). *)

let clz64 (v : int64) =
  if Int64.equal v 0L then 64L
  else begin
    let n = ref 0 and v = ref v in
    while Int64.compare !v 0L > 0 do
      incr n;
      v := Int64.shift_left !v 1
    done;
    Int64.of_int !n
  end

let ctz64 (v : int64) =
  if Int64.equal v 0L then 64L
  else begin
    let n = ref 0 and v = ref v in
    while Int64.logand !v 1L = 0L do
      incr n;
      v := Int64.shift_right_logical !v 1
    done;
    Int64.of_int !n
  end

let cpop64 (v : int64) =
  let n = ref 0 in
  for k = 0 to 63 do
    if Int64.logand (Int64.shift_right_logical v k) 1L = 1L then incr n
  done;
  Int64.of_int !n

(* W variants operate on the low 32 bits *)
let low32 v = Int64.logand v 0xFFFF_FFFFL

let clz32 v =
  let v = low32 v in
  if Int64.equal v 0L then 32L else Int64.sub (clz64 v) 32L

let ctz32 v =
  let v = low32 v in
  if Int64.equal v 0L then 32L else ctz64 v

let cpop32 v = cpop64 (low32 v)

let rol64 v n =
  let n = Int64.to_int (Int64.logand n 63L) in
  if n = 0 then v
  else
    Int64.logor (Int64.shift_left v n) (Int64.shift_right_logical v (64 - n))

let ror64 v n =
  let n = Int64.to_int (Int64.logand n 63L) in
  if n = 0 then v
  else
    Int64.logor (Int64.shift_right_logical v n) (Int64.shift_left v (64 - n))

let sx32 v = Dyn_util.Bits.sign_extend64 v 32

let rolw v n =
  let n = Int64.to_int (Int64.logand n 31L) in
  let v32 = low32 v in
  if n = 0 then sx32 v32
  else
    sx32
      (Int64.logor
         (Int64.shift_left v32 n)
         (Int64.shift_right_logical v32 (32 - n)))

let rorw v n =
  let n = Int64.to_int (Int64.logand n 31L) in
  let v32 = low32 v in
  if n = 0 then sx32 v32
  else
    sx32
      (Int64.logor
         (Int64.shift_right_logical v32 n)
         (Int64.shift_left v32 (32 - n)))

(* rev8: byte-reverse the 64-bit value *)
let rev8 (v : int64) =
  let b k = Int64.logand (Int64.shift_right_logical v (8 * k)) 0xFFL in
  let r = ref 0L in
  for k = 0 to 7 do
    r := Int64.logor (Int64.shift_left !r 8) (b k)
  done;
  !r

(* orc.b: each byte becomes 0xFF if it had any bit set, else 0x00 *)
let orc_b (v : int64) =
  let r = ref 0L in
  for k = 0 to 7 do
    let byte = Int64.logand (Int64.shift_right_logical v (8 * k)) 0xFFL in
    if not (Int64.equal byte 0L) then
      r := Int64.logor !r (Int64.shift_left 0xFFL (8 * k))
  done;
  !r

let max_s a b = if Int64.compare a b >= 0 then a else b
let min_s a b = if Int64.compare a b <= 0 then a else b
let max_u a b = if Int64.unsigned_compare a b >= 0 then a else b
let min_u a b = if Int64.unsigned_compare a b <= 0 then a else b
