lib/riscv/insn.mli: Format Op Reg
