lib/riscv/asm.ml: Array Bits Buffer Build Byte_buf Bytes Dyn_util Encode Hashtbl Insn Int64 List Op Reg String
