lib/riscv/insn.ml: Format Int64 Op Reg
