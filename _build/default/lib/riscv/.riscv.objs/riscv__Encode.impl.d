lib/riscv/encode.ml: Bits Buffer Bytes Dyn_util Format Insn Int64 Op
