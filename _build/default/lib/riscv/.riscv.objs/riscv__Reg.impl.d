lib/riscv/reg.ml: Array Format
