lib/riscv/reg.mli: Format
