lib/riscv/decode.ml: Bits Bytes Dyn_util Hashtbl Insn Int64 List Op
