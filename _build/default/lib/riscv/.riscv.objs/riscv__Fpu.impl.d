lib/riscv/fpu.ml: Float Int32 Int64
