lib/riscv/bitmanip.ml: Dyn_util Int64
