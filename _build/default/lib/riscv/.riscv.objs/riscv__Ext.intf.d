lib/riscv/ext.mli: Format Set
