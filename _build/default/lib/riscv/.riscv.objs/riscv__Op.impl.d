lib/riscv/op.ml: Ext Format Hashtbl List String
