lib/riscv/ext.ml: Format List Printf Set String
