lib/riscv/asm.mli: Bytes Insn Op Reg
