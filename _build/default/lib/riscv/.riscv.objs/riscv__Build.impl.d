lib/riscv/build.ml: Bits Dyn_util Insn Int64 Op Reg
