(** The RISC-V extension model (paper §3.1.1).

    RISC-V is a base ISA plus optional extensions; a {!profile} is the
    extension set a processor implements.  SymtabAPI discovers the
    mutatee's profile from [.riscv.attributes] or [e_flags]; CodeGenAPI
    refuses to emit instructions from extensions outside it. *)

type t =
  | I  (** base integer *)
  | M  (** integer multiply/divide *)
  | A  (** atomics *)
  | F  (** single-precision floating point *)
  | D  (** double-precision floating point *)
  | C  (** compressed instructions *)
  | Zicsr  (** CSR instructions *)
  | Zifencei  (** instruction-fetch fence *)
  | Zba  (** address generation (decoded + simulated here) *)
  | Zbb  (** basic bit manipulation (decoded + simulated here) *)
  | V  (** vector — modelled, not yet decoded (paper §3.4) *)
  | Zicond  (** integer conditional — modelled, not yet decoded *)

val all : t list
val name : t -> string

(** Single- or multi-letter extension name; [None] for unknown names and
    for the "g" shorthand (handled by {!parse_arch_string}). *)
val of_name : string -> t option

module Set : Set.S with type elt = t

(** A processor profile: XLEN plus the implemented extension set. *)
type profile = { xlen : int; exts : Set.t }

val rv64i : profile
val rv64g : profile

(** The profile the paper's port targets (and Capstone supports). *)
val rv64gc : profile

(** The RVA23 application profile of the paper's future work. *)
val rva23 : profile

val supports : profile -> t -> bool
val equal_profile : profile -> profile -> bool
val with_ext : profile -> t -> profile
val without_ext : profile -> t -> profile

(** Parse a Tag_RISCV_arch ISA string such as
    ["rv64imafdc_zicsr_zifencei"].  Version suffixes ([2p1]) are accepted
    and ignored; unknown extensions are skipped (binaries may use
    extensions newer than this tool). *)
val parse_arch_string : string -> (profile, string) result

(** Canonical printing, e.g. ["rv64imafdc_zicsr_zifencei"]. *)
val arch_string : profile -> string

val pp_profile : Format.formatter -> profile -> unit

(**/**)

val g_exts : t list
