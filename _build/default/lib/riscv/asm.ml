(* A small two-pass assembler over [Insn.t] streams with labels, used to
   build mutatee code (minicc backend, tests) and instrumentation
   trampolines.

   Label-relative items (branches, calls, la) are relaxed iteratively:
   sizing starts optimistic (shortest form) and grows until a fixpoint,
   mirroring how compilers choose between jal and auipc+jalr sequences
   (paper §3.2.3). *)

open Dyn_util

type item =
  | Insn of Insn.t
  | Label of string
  | Br of Op.t * Reg.t * Reg.t * string (* conditional branch to label *)
  | J of string (* jal x0, label *)
  | Call_l of string (* call: jal ra / auipc+jalr relaxation *)
  | Tail_l of string (* tail call: jal x0 / auipc+jalr x0 *)
  | La of Reg.t * string (* load address, pc-relative *)
  | Li of Reg.t * int64
  | Raw of string (* literal bytes *)
  | D8 of int
  | D32 of int32
  | D64 of int64
  | Align of int

exception Undefined_label of string

(* Split a pc-relative offset into (hi20, lo12) for auipc/addi pairs. *)
let pcrel_hi_lo off =
  let lo = Bits.sign_extend (Int64.to_int (Int64.logand off 0xFFFL)) 12 in
  let hi20 =
    Int64.to_int (Int64.shift_right (Int64.sub off (Int64.of_int lo)) 12)
    land 0xFFFFF
  in
  (hi20, lo)

type result = {
  code : Bytes.t;
  labels : (string * int64) list; (* label -> absolute address *)
}

(* Assemble [items] for load address [base].  [symbols] provides external
   label addresses (e.g. data objects laid out elsewhere). *)
let assemble ?(base = 0L) ?(symbols = fun (_ : string) -> (None : int64 option))
    (items : item list) : result =
  (* size of an item given current size guesses; [addr_of] resolves labels
     or raises Not_found during sizing (callers treat unknown-yet labels
     as worst case). *)
  let items = Array.of_list items in
  let n = Array.length items in
  (* sizes.(k) = current byte size of item k *)
  let sizes = Array.make n 0 in
  let li_size rd v = 4 * List.length (Build.li rd v) in
  let initial_size = function
    | Insn _ -> 4 (* always emitted in the uncompressed form *)
    | Label _ -> 0
    | Br (_, _, _, _) -> 4
    | J _ -> 4
    | Call_l _ -> 4
    | Tail_l _ -> 4
    | La (_, _) -> 8
    | Li (rd, v) -> li_size rd v
    | Raw s -> String.length s
    | D8 _ -> 1
    | D32 _ -> 4
    | D64 _ -> 8
    | Align a -> a (* worst case until addresses settle *)
  in
  Array.iteri (fun k it -> sizes.(k) <- initial_size it) items;
  (* iterate: compute addresses, then re-size relaxable items *)
  let offsets = Array.make n 0L in
  let compute_offsets () =
    let cur = ref base in
    for k = 0 to n - 1 do
      (match items.(k) with
      | Align a -> sizes.(k) <- Int64.to_int (Int64.sub (Bits.align_up !cur a) !cur)
      | _ -> ());
      offsets.(k) <- !cur;
      cur := Int64.add !cur (Int64.of_int sizes.(k))
    done
  in
  let label_table () =
    let h = Hashtbl.create 16 in
    for k = 0 to n - 1 do
      match items.(k) with
      | Label l -> Hashtbl.replace h l offsets.(k)
      | _ -> ()
    done;
    h
  in
  let resolve h l =
    match Hashtbl.find_opt h l with
    | Some a -> a
    | None -> (
        match symbols l with Some a -> a | None -> raise (Undefined_label l))
  in
  let changed = ref true in
  let iterations = ref 0 in
  while !changed do
    incr iterations;
    if !iterations > 32 then failwith "Asm.assemble: relaxation did not converge";
    changed := false;
    compute_offsets ();
    let h = label_table () in
    for k = 0 to n - 1 do
      let need =
        match items.(k) with
        | Br (_, _, _, l) ->
            (* near: 4-byte branch; far: inverted branch over a jal (8);
               very far: inverted branch over auipc+jalr (12) *)
            let off = Int64.sub (resolve h l) offsets.(k) in
            if Bits.fits_signed off 13 then 4
            else if Bits.fits_signed (Int64.sub off 4L) 21 then 8
            else 12
        | J l | Tail_l l ->
            let off = Int64.sub (resolve h l) offsets.(k) in
            if Bits.fits_signed off 21 then 4 else 12 (* auipc+jalr via t1 *)
        | Call_l l ->
            let off = Int64.sub (resolve h l) offsets.(k) in
            if Bits.fits_signed off 21 then 4 else 8
        | _ -> sizes.(k)
      in
      if need > sizes.(k) then begin
        sizes.(k) <- need;
        changed := true
      end
    done
  done;
  compute_offsets ();
  let h = label_table () in
  let buf = Buffer.create 1024 in
  let emit i = Buffer.add_bytes buf (Encode.encode i) in
  for k = 0 to n - 1 do
    let addr = offsets.(k) in
    (match items.(k) with
    | Insn i -> emit i
    | Label _ -> ()
    | Br (op, rs1, rs2, l) ->
        let off = Int64.sub (resolve h l) addr in
        if sizes.(k) = 4 then
          emit (Insn.make ~rs1 ~rs2 ~imm:off op)
        else begin
          (* invert the condition and hop over a longer jump *)
          let inv =
            match op with
            | Op.BEQ -> Op.BNE
            | Op.BNE -> Op.BEQ
            | Op.BLT -> Op.BGE
            | Op.BGE -> Op.BLT
            | Op.BLTU -> Op.BGEU
            | Op.BGEU -> Op.BLTU
            | _ -> invalid_arg "Asm: not a branch op"
          in
          emit (Insn.make ~rs1 ~rs2 ~imm:(Int64.of_int (sizes.(k) - 4 + 4)) inv);
          let off = Int64.sub (resolve h l) (Int64.add addr 4L) in
          if sizes.(k) = 8 then emit (Build.jal Reg.zero (Int64.to_int off))
          else begin
            let hi, lo = pcrel_hi_lo off in
            emit (Build.auipc Reg.t1 hi);
            emit (Build.jalr Reg.zero Reg.t1 lo)
          end
        end
    | J l | Tail_l l ->
        let off = Int64.sub (resolve h l) addr in
        if sizes.(k) = 4 then emit (Build.jal Reg.zero (Int64.to_int off))
        else begin
          let hi, lo = pcrel_hi_lo off in
          emit (Build.auipc Reg.t1 hi);
          emit (Build.jalr Reg.zero Reg.t1 lo);
          emit Build.nop (* keep size 12 as relaxed *)
        end
    | Call_l l ->
        let off = Int64.sub (resolve h l) addr in
        if sizes.(k) = 4 then emit (Build.jal Reg.ra (Int64.to_int off))
        else begin
          let hi, lo = pcrel_hi_lo off in
          emit (Build.auipc Reg.t1 hi);
          emit (Build.jalr Reg.ra Reg.t1 lo)
        end
    | La (rd, l) ->
        let off = Int64.sub (resolve h l) addr in
        let hi, lo = pcrel_hi_lo off in
        emit (Build.auipc rd hi);
        emit (Build.addi rd rd lo)
    | Li (rd, v) -> List.iter emit (Build.li rd v)
    | Raw s -> Buffer.add_string buf s
    | D8 v -> Byte_buf.w_u8 buf v
    | D32 v -> Buffer.add_int32_le buf v
    | D64 v -> Buffer.add_int64_le buf v
    | Align _ ->
        for _ = 1 to sizes.(k) do
          Buffer.add_char buf '\000'
        done);
    (* sanity: emitted size must match computed size *)
    let emitted =
      Int64.sub (Int64.add base (Int64.of_int (Buffer.length buf))) addr
    in
    assert (emitted = Int64.of_int sizes.(k))
  done;
  let labels =
    Hashtbl.fold (fun l a acc -> (l, a) :: acc) h []
    |> List.sort (fun (_, a) (_, b) -> Int64.compare a b)
  in
  { code = Buffer.to_bytes buf; labels }

let label_addr result l =
  match List.assoc_opt l result.labels with
  | Some a -> a
  | None -> raise (Undefined_label l)
