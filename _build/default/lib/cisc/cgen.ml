(* mini-C -> CISC-64 backend.

   Classic x86 -O0 shape: a frame pointer (R15 ~ rbp) anchors locals,
   expressions evaluate through a two-register + stack discipline
   (result in R5, operands pushed/popped), comparisons go through the
   flags, and calls pass arguments in R0-R3 / F0-F3.

   The same mini-C source compiled by Ccodegen (RISC-V) and by this
   backend gives the two columns of the paper's §4.3 table. *)

open Minicc.Cast

exception Codegen_error of string

let fail fmt = Format.kasprintf (fun s -> raise (Codegen_error s)) fmt

let rbp = 15
let acc = 5 (* integer accumulator *)
let acc2 = 6
let facc = 4 (* FP accumulator *)
let facc2 = 5

type genv = {
  g_globals : (string, int64 * ty) Hashtbl.t; (* absolute address, elem ty *)
  g_funcs : (string, Minicc.Cast.func) Hashtbl.t;
}

type fenv = {
  genv : genv;
  locals : (string, int * ty) Hashtbl.t; (* rbp-relative disp (negative) *)
  fn : Minicc.Cast.func;
  epilogue : string;
  mutable label_id : int;
}

let fresh fe tag =
  fe.label_id <- fe.label_id + 1;
  Printf.sprintf ".C%s_%s%d" fe.fn.fn_name tag fe.label_id

let builtin_ret = function
  | "clock_ns" -> Some Tint
  | "print_int" | "print_char" | "exit" -> Some Tvoid
  | _ -> None

let rec ty_of fe (e : expr) : ty =
  match e with
  | Eint _ -> Tint
  | Efloat _ -> Tdouble
  | Evar x -> (
      match Hashtbl.find_opt fe.locals x with
      | Some (_, t) -> t
      | None -> (
          match Hashtbl.find_opt fe.genv.g_globals x with
          | Some (_, t) -> t
          | None -> fail "unknown variable %s" x))
  | Eindex (a, _) -> (
      match Hashtbl.find_opt fe.genv.g_globals a with
      | Some (_, t) -> t
      | None -> fail "unknown array %s" a)
  | Ecall (f, _) -> (
      match builtin_ret f with
      | Some t -> t
      | None -> (
          match Hashtbl.find_opt fe.genv.g_funcs f with
          | Some fn -> fn.fn_ret
          | None -> fail "unknown function %s" f))
  | Ebin ((Lt | Le | Gt | Ge | Eq | Ne | And | Or), _, _) -> Tint
  | Ebin (_, a, b) ->
      if ty_of fe a = Tdouble || ty_of fe b = Tdouble then Tdouble else Tint
  | Eneg e -> ty_of fe e
  | Enot _ -> Tint

open Casm

let i x = I x

(* push / pop the FP accumulator as raw bits via the stack *)
let fpush f = [ i (Isa.Addi (Isa.sp, -8l)); i (Isa.Fstore (f, Isa.sp, 0l)) ]
let fpop f = [ i (Isa.Fload (f, Isa.sp, 0l)); i (Isa.Addi (Isa.sp, 8l)) ]

(* integer expression -> R5 *)
let rec gen_i fe (e : expr) : item list =
  match e with
  | Eint v -> [ i (Isa.Movi (acc, v)) ]
  | Efloat _ -> fail "float literal in int context"
  | Evar x -> (
      match Hashtbl.find_opt fe.locals x with
      | Some (disp, Tint) -> [ i (Isa.Load (acc, rbp, Int32.of_int disp)) ]
      | Some (_, _) -> coerce_d_to_i fe e
      | None -> (
          match Hashtbl.find_opt fe.genv.g_globals x with
          | Some (addr, Tint) ->
              [ i (Isa.Movi (acc2, addr)); i (Isa.Load (acc, acc2, 0l)) ]
          | Some _ -> coerce_d_to_i fe e
          | None -> fail "unknown variable %s" x))
  | Eindex (a, idx) -> (
      match Hashtbl.find_opt fe.genv.g_globals a with
      | Some (addr, Tint) ->
          gen_i fe idx
          @ [
              i (Isa.Shli (acc, 3));
              i (Isa.Movi (acc2, addr));
              i (Isa.Add (acc, acc2));
              i (Isa.Load (acc, acc, 0l));
            ]
      | Some _ -> coerce_d_to_i fe e
      | None -> fail "unknown array %s" a)
  | Ecall _ when ty_of fe e = Tdouble -> coerce_d_to_i fe e
  | Ecall (f, args) -> gen_call fe f args @ [ i (Isa.Mov (acc, 0)) ]
  | Eneg e when ty_of fe e = Tdouble -> coerce_d_to_i fe (Eneg e)
  | Eneg e -> gen_i fe e @ [ i (Isa.Neg acc) ]
  | Enot e -> gen_i fe e @ [ i (Isa.Cmpi (acc, 0l)); i (Isa.Setcc (Isa.Eq, acc)) ]
  | Ebin (And, a, b) ->
      let l_f = fresh fe "andf" and l_e = fresh fe "ande" in
      gen_i fe a
      @ [ i (Isa.Cmpi (acc, 0l)); JccL (Isa.Eq, l_f) ]
      @ gen_i fe b
      @ [ i (Isa.Cmpi (acc, 0l)); i (Isa.Setcc (Isa.Ne, acc)); JmpL l_e;
          L l_f; i (Isa.Movi (acc, 0L)); L l_e ]
  | Ebin (Or, a, b) ->
      let l_t = fresh fe "ort" and l_e = fresh fe "ore" in
      gen_i fe a
      @ [ i (Isa.Cmpi (acc, 0l)); JccL (Isa.Ne, l_t) ]
      @ gen_i fe b
      @ [ i (Isa.Cmpi (acc, 0l)); i (Isa.Setcc (Isa.Ne, acc)); JmpL l_e;
          L l_t; i (Isa.Movi (acc, 1L)); L l_e ]
  | Ebin (op, a, b)
    when (ty_of fe a = Tdouble || ty_of fe b = Tdouble)
         && List.mem op [ Lt; Le; Gt; Ge; Eq; Ne ] ->
      gen_d fe a @ fpush facc @ gen_d fe b
      @ [ i (Isa.Fmov (facc2, facc)) ]
      @ fpop facc
      @ [ i (Isa.Fcmp (facc, facc2)) ]
      @ [
          i
            (Isa.Setcc
               ( (match op with
                 | Lt -> Isa.Lt | Le -> Isa.Le | Gt -> Isa.Gt
                 | Ge -> Isa.Ge | Eq -> Isa.Eq | _ -> Isa.Ne),
                 acc ));
        ]
  | Ebin (op, _, _) when ty_of fe e = Tdouble ->
      ignore op;
      coerce_d_to_i fe e
  | Ebin (op, a, b) -> (
      let both =
        gen_i fe a
        @ [ i (Isa.Push acc) ]
        @ gen_i fe b
        @ [ i (Isa.Mov (acc2, acc)); i (Isa.Pop acc) ]
      in
      match op with
      | Add -> both @ [ i (Isa.Add (acc, acc2)) ]
      | Sub -> both @ [ i (Isa.Sub (acc, acc2)) ]
      | Mul -> both @ [ i (Isa.Imul (acc, acc2)) ]
      | Div -> both @ [ i (Isa.Idiv (acc, acc2)) ]
      | Mod -> both @ [ i (Isa.Irem (acc, acc2)) ]
      | Band -> both @ [ i (Isa.And_ (acc, acc2)) ]
      | Bor -> both @ [ i (Isa.Or_ (acc, acc2)) ]
      | Bxor -> both @ [ i (Isa.Xor_ (acc, acc2)) ]
      | Shl | Shr ->
          (* constant shifts only in this backend *)
          (match b with
          | Eint n ->
              gen_i fe a
              @ [ i (if op = Shl then Isa.Shli (acc, Int64.to_int n)
                     else Isa.Sari (acc, Int64.to_int n)) ]
          | _ -> fail "variable shift unsupported on CISC backend")
      | Lt | Le | Gt | Ge | Eq | Ne ->
          both
          @ [ i (Isa.Cmp (acc, acc2));
              i
                (Isa.Setcc
                   ( (match op with
                     | Lt -> Isa.Lt | Le -> Isa.Le | Gt -> Isa.Gt
                     | Ge -> Isa.Ge | Eq -> Isa.Eq | _ -> Isa.Ne),
                     acc )) ]
      | And | Or -> assert false)

and coerce_d_to_i fe e = gen_d fe e @ [ i (Isa.Fcvt_fi (acc, facc)) ]

(* double expression -> F4 *)
and gen_d fe (e : expr) : item list =
  match e with
  | Efloat f -> [ i (Isa.Fmovi (facc, Int64.bits_of_float f)) ]
  | Eint v -> [ i (Isa.Movi (acc, v)); i (Isa.Fcvt_if (facc, acc)) ]
  | Evar x -> (
      match Hashtbl.find_opt fe.locals x with
      | Some (disp, Tdouble) -> [ i (Isa.Fload (facc, rbp, Int32.of_int disp)) ]
      | Some (_, _) -> gen_i fe e @ [ i (Isa.Fcvt_if (facc, acc)) ]
      | None -> (
          match Hashtbl.find_opt fe.genv.g_globals x with
          | Some (addr, Tdouble) ->
              [ i (Isa.Movi (acc2, addr)); i (Isa.Fload (facc, acc2, 0l)) ]
          | Some _ -> gen_i fe e @ [ i (Isa.Fcvt_if (facc, acc)) ]
          | None -> fail "unknown variable %s" x))
  | Eindex (a, idx) -> (
      match Hashtbl.find_opt fe.genv.g_globals a with
      | Some (addr, Tdouble) ->
          gen_i fe idx
          @ [
              i (Isa.Shli (acc, 3));
              i (Isa.Movi (acc2, addr));
              i (Isa.Add (acc, acc2));
              i (Isa.Fload (facc, acc, 0l));
            ]
      | Some _ -> gen_i fe e @ [ i (Isa.Fcvt_if (facc, acc)) ]
      | None -> fail "unknown array %s" a)
  | Ecall (f, args) when ty_of fe e = Tdouble ->
      gen_call fe f args @ [ i (Isa.Fmov (facc, 0)) ]
  | Ecall _ -> gen_i fe e @ [ i (Isa.Fcvt_if (facc, acc)) ]
  | Eneg e when ty_of fe e = Tdouble ->
      gen_d fe e
      @ [ i (Isa.Fmovi (facc2, Int64.bits_of_float 0.0));
          i (Isa.Fsub (facc2, facc)); i (Isa.Fmov (facc, facc2)) ]
  | Eneg _ | Enot _ -> gen_i fe e @ [ i (Isa.Fcvt_if (facc, acc)) ]
  | Ebin (op, a, b) when List.mem op [ Add; Sub; Mul; Div ] ->
      gen_d fe a @ fpush facc @ gen_d fe b
      @ [ i (Isa.Fmov (facc2, facc)) ]
      @ fpop facc
      @ [
          i
            (match op with
            | Add -> Isa.Fadd (facc, facc2)
            | Sub -> Isa.Fsub (facc, facc2)
            | Mul -> Isa.Fmul (facc, facc2)
            | _ -> Isa.Fdiv (facc, facc2));
        ]
  | Ebin _ -> gen_i fe e @ [ i (Isa.Fcvt_if (facc, acc)) ]

(* call: result in R0 / F0 *)
and gen_call fe (f : string) (args : expr list) : item list =
  match (f, args) with
  | "exit", [ code ] ->
      gen_i fe code
      @ [ i (Isa.Mov (0, acc)); i (Isa.Movi (7, 93L)); i Isa.Syscall ]
  | "clock_ns", [] -> [ CallL "__clock_ns" ]
  | "print_int", [ e ] -> gen_i fe e @ [ i (Isa.Mov (0, acc)); CallL "__print_int" ]
  | "print_char", [ e ] -> gen_i fe e @ [ i (Isa.Mov (0, acc)); CallL "__print_char" ]
  | _ -> (
      match Hashtbl.find_opt fe.genv.g_funcs f with
      | None -> fail "unknown function %s" f
      | Some callee ->
          let params = callee.fn_params in
          if List.length params <> List.length args then
            fail "%s arity mismatch" f;
          if List.length params > 4 then fail "more than 4 args unsupported";
          (* push each argument value (as raw 8 bytes) left to right *)
          let pushes =
            List.concat
              (List.map2
                 (fun (p : param) a ->
                   match p.p_ty with
                   | Tdouble -> gen_d fe a @ fpush facc
                   | _ -> gen_i fe a @ [ i (Isa.Push acc) ])
                 params args)
          in
          (* pop right-to-left into argument registers by class *)
          let classified =
            List.mapi
              (fun k (p : param) ->
                let int_idx =
                  List.filteri (fun j _ -> j < k) params
                  |> List.filter (fun (q : param) -> q.p_ty <> Tdouble)
                  |> List.length
                in
                let fp_idx =
                  List.filteri (fun j _ -> j < k) params
                  |> List.filter (fun (q : param) -> q.p_ty = Tdouble)
                  |> List.length
                in
                (p.p_ty, int_idx, fp_idx))
              params
          in
          let pops =
            List.rev classified
            |> List.concat_map (fun (ty, ii, fi) ->
                   match ty with
                   | Tdouble -> fpop fi
                   | _ -> [ i (Isa.Pop ii) ])
          in
          pushes @ pops @ [ CallL f ])

(* --- statements ----------------------------------------------------------------- *)

let store_local fe x (vty : ty) : item list =
  match Hashtbl.find_opt fe.locals x with
  | Some (disp, Tint) ->
      (if vty = Tdouble then [ i (Isa.Fcvt_fi (acc, facc)) ] else [])
      @ [ i (Isa.Store (acc, rbp, Int32.of_int disp)) ]
  | Some (disp, Tdouble) ->
      (if vty <> Tdouble then [ i (Isa.Fcvt_if (facc, acc)) ] else [])
      @ [ i (Isa.Fstore (facc, rbp, Int32.of_int disp)) ]
  | Some (_, Tvoid) -> fail "void local"
  | None -> (
      match Hashtbl.find_opt fe.genv.g_globals x with
      | Some (addr, Tint) ->
          (if vty = Tdouble then [ i (Isa.Fcvt_fi (acc, facc)) ] else [])
          @ [ i (Isa.Movi (acc2, addr)); i (Isa.Store (acc, acc2, 0l)) ]
      | Some (addr, Tdouble) ->
          (if vty <> Tdouble then [ i (Isa.Fcvt_if (facc, acc)) ] else [])
          @ [ i (Isa.Movi (acc2, addr)); i (Isa.Fstore (facc, acc2, 0l)) ]
      | _ -> fail "unknown variable %s" x)

let gen_value fe e =
  match ty_of fe e with
  | Tdouble -> (gen_d fe e, Tdouble)
  | _ -> (gen_i fe e, Tint)

let rec gen_stmt fe ~brk (s : stmt) : item list =
  match s with
  | Sdecl (_, _, None) -> []
  | Sdecl (_, x, Some e) | Sassign (x, e) ->
      let items, vty = gen_value fe e in
      items @ store_local fe x vty
  | Sstore (a, idx, v) -> (
      match Hashtbl.find_opt fe.genv.g_globals a with
      | Some (addr, gty) ->
          let value_items, vty = gen_value fe v in
          let coerce =
            match (gty, vty) with
            | Tint, Tdouble -> [ i (Isa.Fcvt_fi (acc, facc)) ]
            | Tdouble, Tint -> [ i (Isa.Fcvt_if (facc, acc)) ]
            | _ -> []
          in
          let save_value =
            if gty = Tdouble then fpush facc else [ i (Isa.Push acc) ]
          in
          let restore_value =
            if gty = Tdouble then fpop facc else [ i (Isa.Pop acc2) ]
          in
          (* address into acc (int path) *)
          value_items @ coerce @ save_value
          @ gen_i fe idx
          @ [ i (Isa.Shli (acc, 3)); i (Isa.Movi (7, addr)); i (Isa.Add (acc, 7)) ]
          @ restore_value
          @ (if gty = Tdouble then [ i (Isa.Fstore (facc, acc, 0l)) ]
             else [ i (Isa.Store (acc2, acc, 0l)) ])
      | None -> fail "unknown array %s" a)
  | Sif (c, then_b, else_b) ->
      let l_else = fresh fe "else" and l_end = fresh fe "endif" in
      gen_i fe c
      @ [ i (Isa.Cmpi (acc, 0l)); JccL (Isa.Eq, l_else) ]
      @ List.concat_map (gen_stmt fe ~brk) then_b
      @ [ JmpL l_end; L l_else ]
      @ List.concat_map (gen_stmt fe ~brk) else_b
      @ [ L l_end ]
  | Swhile (c, body) ->
      let l_head = fresh fe "while" and l_end = fresh fe "endw" in
      [ L l_head ]
      @ gen_i fe c
      @ [ i (Isa.Cmpi (acc, 0l)); JccL (Isa.Eq, l_end) ]
      @ List.concat_map (gen_stmt fe ~brk:(Some l_end)) body
      @ [ JmpL l_head; L l_end ]
  | Sfor (init, cond, step, body) ->
      let l_head = fresh fe "for" and l_end = fresh fe "endf" in
      (match init with Some s -> gen_stmt fe ~brk s | None -> [])
      @ [ L l_head ]
      @ (match cond with
        | Some c -> gen_i fe c @ [ i (Isa.Cmpi (acc, 0l)); JccL (Isa.Eq, l_end) ]
        | None -> [])
      @ List.concat_map (gen_stmt fe ~brk:(Some l_end)) body
      @ (match step with Some s -> gen_stmt fe ~brk s | None -> [])
      @ [ JmpL l_head; L l_end ]
  | Sswitch (e, cases, dflt) ->
      (* if-chain dispatch on this backend *)
      let l_end = fresh fe "ends" and l_dflt = fresh fe "dflt" in
      let case_labels = List.map (fun (v, _) -> (v, fresh fe "case")) cases in
      gen_i fe e
      @ List.concat_map
          (fun (v, lbl) ->
            [ i (Isa.Cmpi (acc, Int64.to_int32 v)); JccL (Isa.Eq, lbl) ])
          case_labels
      @ [ JmpL l_dflt ]
      @ List.concat_map
          (fun ((_, body), (_, lbl)) ->
            L lbl :: List.concat_map (gen_stmt fe ~brk:(Some l_end)) body)
          (List.combine cases case_labels)
      @ [ L l_dflt ]
      @ List.concat_map (gen_stmt fe ~brk:(Some l_end)) dflt
      @ [ L l_end ]
  | Sreturn None -> [ JmpL fe.epilogue ]
  | Sreturn (Some e) ->
      let items, vty = gen_value fe e in
      items
      @ (match (fe.fn.fn_ret, vty) with
        | Tdouble, Tdouble -> [ i (Isa.Fmov (0, facc)) ]
        | Tdouble, _ -> [ i (Isa.Fcvt_if (0, acc)) ]
        | _, Tdouble -> [ i (Isa.Fcvt_fi (0, facc)) ]
        | _, _ -> [ i (Isa.Mov (0, acc)) ])
      @ [ JmpL fe.epilogue ]
  | Sbreak -> (
      match brk with
      | Some l -> [ JmpL l ]
      | None -> fail "break outside loop")
  | Sexpr (Ecall (f, args)) -> gen_call fe f args
  | Sexpr e -> gen_i fe e
  | Sblock body -> List.concat_map (gen_stmt fe ~brk) body

let collect_locals (fn : Minicc.Cast.func) =
  let acc = ref [] in
  let add name ty = if not (List.mem_assoc name !acc) then acc := (name, ty) :: !acc in
  List.iter (fun (p : param) -> add p.p_name p.p_ty) fn.fn_params;
  let rec walk s =
    match s with
    | Sdecl (ty, name, _) -> add name ty
    | Sif (_, a, b) -> List.iter walk a; List.iter walk b
    | Swhile (_, b) -> List.iter walk b
    | Sfor (init, _, step, b) ->
        Option.iter walk init;
        Option.iter walk step;
        List.iter walk b
    | Sswitch (_, cases, dflt) ->
        List.iter (fun (_, b) -> List.iter walk b) cases;
        List.iter walk dflt
    | Sblock b -> List.iter walk b
    | Sassign _ | Sstore _ | Sreturn _ | Sbreak | Sexpr _ -> ()
  in
  List.iter walk fn.fn_body;
  List.rev !acc

let gen_func (genv : genv) (fn : Minicc.Cast.func) : item list =
  let locals_list = collect_locals fn in
  let locals = Hashtbl.create 16 in
  List.iteri
    (fun k (name, ty) -> Hashtbl.replace locals name (-8 * (k + 1), ty))
    locals_list;
  let frame = 8 * List.length locals_list in
  let epilogue = Printf.sprintf ".C%s_ret" fn.fn_name in
  let fe = { genv; locals; fn; epilogue; label_id = 0 } in
  let prologue =
    [ L fn.fn_name; i (Isa.Push rbp); i (Isa.Mov (rbp, Isa.sp));
      i (Isa.Addi (Isa.sp, Int32.of_int (-frame))) ]
  in
  let int_seen = ref 0 and fp_seen = ref 0 in
  let arg_spills =
    List.concat_map
      (fun (p : param) ->
        let disp, _ = Hashtbl.find locals p.p_name in
        match p.p_ty with
        | Tdouble ->
            let k = !fp_seen in
            incr fp_seen;
            [ i (Isa.Fstore (k, rbp, Int32.of_int disp)) ]
        | _ ->
            let k = !int_seen in
            incr int_seen;
            [ i (Isa.Store (k, rbp, Int32.of_int disp)) ])
      fn.fn_params
  in
  let body = List.concat_map (gen_stmt fe ~brk:None) fn.fn_body in
  prologue @ arg_spills @ body
  @ [ L epilogue; i (Isa.Mov (Isa.sp, rbp)); i (Isa.Pop rbp); i Isa.Ret ]
