(* CISC-64 emulator, mirroring Rvsim.Machine but modelling a wide
   out-of-order desktop core: most instructions retire in one model
   cycle at a high effective frequency, memory-operand instructions cost
   a bit more, and PUSHF/POPF pay a flag-serialization penalty (the cost
   x86 instrumentation incurs when it cannot prove the flags dead).
   The syscall convention matches the RISC-V side (number in R7). *)

type flags = { mutable zf : bool; mutable lt : bool (* signed less-than *) }

type stop =
  | Exited of int
  | Trap_hit of int64
  | Fault of string * int64
  | Limit

type t = {
  regs : int64 array; (* 16 GPRs; regs.(4) = sp *)
  fregs : float array; (* 8 doubles *)
  flags : flags;
  mem : Rvsim.Mem.t;
  mutable pc : int64;
  mutable cycles : int64;
  mutable instret : int64;
  freq_hz : int64;
  stdout_buf : Buffer.t;
  mutable brk : int64;
  redirects : (int64, int64) Hashtbl.t; (* trap springboards *)
}

(* Effective frequency of the model: a 14600T-class core retires several
   instructions per (800 MHz) cycle; folding IPC into frequency keeps the
   model integer.  6.4 GHz effective ~ 8 instructions/cycle headroom. *)
let default_freq = 6_400_000_000L

let create ?(freq_hz = default_freq) () =
  {
    regs = Array.make 16 0L;
    fregs = Array.make 8 0.0;
    flags = { zf = false; lt = false };
    mem = Rvsim.Mem.create ();
    pc = 0L;
    cycles = 0L;
    instret = 0L;
    freq_hz;
    stdout_buf = Buffer.create 256;
    brk = 0x40000L;
    redirects = Hashtbl.create 4;
  }

let cost = function
  | Isa.Load _ | Isa.Store _ | Isa.Fload _ | Isa.Fstore _ -> 2
  | Isa.IncAbs _ -> 3 (* read-modify-write *)
  | Isa.Imul _ -> 3
  | Isa.Idiv _ | Isa.Irem _ -> 20
  | Isa.Fdiv _ -> 18
  | Isa.Fadd _ | Isa.Fsub _ | Isa.Fmul _ -> 3
  | Isa.Pushf | Isa.Popf -> 12 (* flag materialization serializes *)
  | Isa.Push _ | Isa.Pop _ | Isa.Call _ | Isa.Ret -> 2
  | Isa.Syscall -> 40
  | _ -> 1

let simulated_ns t = Int64.div (Int64.mul t.cycles 1_000_000_000L) t.freq_hz

exception Stopped of stop

let read8 t a = Rvsim.Mem.read8 t.mem a
let read32 t a = Int32.of_int (Rvsim.Mem.read32 t.mem a)
let read64 t a = Rvsim.Mem.read64 t.mem a

let set_flags t (v : int64) =
  t.flags.zf <- Int64.equal v 0L;
  t.flags.lt <- Int64.compare v 0L < 0

let cond_holds t = function
  | Isa.Eq -> t.flags.zf
  | Isa.Ne -> not t.flags.zf
  | Isa.Lt -> t.flags.lt
  | Isa.Ge -> not t.flags.lt
  | Isa.Le -> t.flags.lt || t.flags.zf
  | Isa.Gt -> (not t.flags.lt) && not t.flags.zf

let push t v =
  t.regs.(Isa.sp) <- Int64.sub t.regs.(Isa.sp) 8L;
  Rvsim.Mem.write64 t.mem t.regs.(Isa.sp) v

let pop t =
  let v = Rvsim.Mem.read64 t.mem t.regs.(Isa.sp) in
  t.regs.(Isa.sp) <- Int64.add t.regs.(Isa.sp) 8L;
  v

let syscall t =
  let nr = Int64.to_int t.regs.(7) in
  match nr with
  | 64 (* write *) ->
      let buf = t.regs.(1) and count = Int64.to_int t.regs.(2) in
      Buffer.add_string t.stdout_buf
        (Bytes.to_string (Rvsim.Mem.read_bytes t.mem buf count));
      t.regs.(0) <- Int64.of_int count
  | 93 | 94 -> raise (Stopped (Exited (Int64.to_int (Int64.logand t.regs.(0) 0xFFL))))
  | 113 (* clock_gettime *) ->
      let tp = t.regs.(1) in
      let ns = simulated_ns t in
      Rvsim.Mem.write64 t.mem tp (Int64.div ns 1_000_000_000L);
      Rvsim.Mem.write64 t.mem (Int64.add tp 8L) (Int64.rem ns 1_000_000_000L);
      t.regs.(0) <- 0L
  | 214 (* brk *) ->
      if Int64.compare t.regs.(0) 0L > 0 then t.brk <- t.regs.(0);
      t.regs.(0) <- t.brk
  | _ -> t.regs.(0) <- 0L

let exec_step t =
  let pc = t.pc in
  let insn, len =
    try Isa.decode ~read8:(read8 t) ~read32:(read32 t) ~read64:(read64 t) pc
    with Isa.Decode_error a -> raise (Stopped (Fault ("undecodable", a)))
  in
  let next = Int64.add pc (Int64.of_int len) in
  t.pc <- next;
  (match insn with
  | Isa.Mov (a, b) -> t.regs.(a) <- t.regs.(b)
  | Isa.Movi (a, v) -> t.regs.(a) <- v
  | Isa.Load (a, b, d) ->
      t.regs.(a) <- Rvsim.Mem.read64 t.mem (Int64.add t.regs.(b) (Int64.of_int32 d))
  | Isa.Store (a, b, d) ->
      Rvsim.Mem.write64 t.mem (Int64.add t.regs.(b) (Int64.of_int32 d)) t.regs.(a)
  | Isa.Add (a, b) ->
      t.regs.(a) <- Int64.add t.regs.(a) t.regs.(b);
      set_flags t t.regs.(a)
  | Isa.Sub (a, b) ->
      t.regs.(a) <- Int64.sub t.regs.(a) t.regs.(b);
      set_flags t t.regs.(a)
  | Isa.And_ (a, b) ->
      t.regs.(a) <- Int64.logand t.regs.(a) t.regs.(b);
      set_flags t t.regs.(a)
  | Isa.Or_ (a, b) ->
      t.regs.(a) <- Int64.logor t.regs.(a) t.regs.(b);
      set_flags t t.regs.(a)
  | Isa.Xor_ (a, b) ->
      t.regs.(a) <- Int64.logxor t.regs.(a) t.regs.(b);
      set_flags t t.regs.(a)
  | Isa.Cmp (a, b) ->
      let d = Int64.sub t.regs.(a) t.regs.(b) in
      t.flags.zf <- Int64.equal d 0L;
      t.flags.lt <- Int64.compare t.regs.(a) t.regs.(b) < 0
  | Isa.Cmpi (a, v) ->
      let w = Int64.of_int32 v in
      t.flags.zf <- Int64.equal t.regs.(a) w;
      t.flags.lt <- Int64.compare t.regs.(a) w < 0
  | Isa.Addi (a, v) ->
      t.regs.(a) <- Int64.add t.regs.(a) (Int64.of_int32 v);
      set_flags t t.regs.(a)
  | Isa.Imul (a, b) -> t.regs.(a) <- Int64.mul t.regs.(a) t.regs.(b)
  | Isa.Idiv (a, b) ->
      if Int64.equal t.regs.(b) 0L then raise (Stopped (Fault ("div0", pc)))
      else t.regs.(a) <- Int64.div t.regs.(a) t.regs.(b)
  | Isa.Irem (a, b) ->
      if Int64.equal t.regs.(b) 0L then raise (Stopped (Fault ("div0", pc)))
      else t.regs.(a) <- Int64.rem t.regs.(a) t.regs.(b)
  | Isa.Shli (a, n) -> t.regs.(a) <- Int64.shift_left t.regs.(a) n
  | Isa.Sari (a, n) -> t.regs.(a) <- Int64.shift_right t.regs.(a) n
  | Isa.Neg a -> t.regs.(a) <- Int64.neg t.regs.(a)
  | Isa.Jmp rel -> t.pc <- Int64.add next (Int64.of_int32 rel)
  | Isa.Jcc (c, rel) ->
      if cond_holds t c then t.pc <- Int64.add next (Int64.of_int32 rel)
  | Isa.Call rel ->
      push t next;
      t.pc <- Int64.add next (Int64.of_int32 rel)
  | Isa.Ret -> t.pc <- pop t
  | Isa.Push a -> push t t.regs.(a)
  | Isa.Pop a -> t.regs.(a) <- pop t
  | Isa.IncAbs addr ->
      let v = Int64.add (Rvsim.Mem.read64 t.mem addr) 1L in
      Rvsim.Mem.write64 t.mem addr v;
      set_flags t v
  | Isa.Pushf ->
      push t
        (Int64.of_int
           ((if t.flags.zf then 1 else 0) lor if t.flags.lt then 2 else 0))
  | Isa.Popf ->
      let v = Int64.to_int (pop t) in
      t.flags.zf <- v land 1 <> 0;
      t.flags.lt <- v land 2 <> 0
  | Isa.Syscall -> syscall t
  | Isa.Trap -> (
      match Hashtbl.find_opt t.redirects pc with
      | Some dest ->
          (* int3 -> SIGTRAP -> handler round trip *)
          t.cycles <- Int64.add t.cycles 3000L;
          t.pc <- dest
      | None ->
          t.pc <- pc;
          raise (Stopped (Trap_hit pc)))
  | Isa.Setcc (c, a) -> t.regs.(a) <- (if cond_holds t c then 1L else 0L)
  | Isa.Fload (f, r, d) ->
      t.fregs.(f) <-
        Int64.float_of_bits
          (Rvsim.Mem.read64 t.mem (Int64.add t.regs.(r) (Int64.of_int32 d)))
  | Isa.Fstore (f, r, d) ->
      Rvsim.Mem.write64 t.mem
        (Int64.add t.regs.(r) (Int64.of_int32 d))
        (Int64.bits_of_float t.fregs.(f))
  | Isa.Fadd (a, b) -> t.fregs.(a) <- t.fregs.(a) +. t.fregs.(b)
  | Isa.Fsub (a, b) -> t.fregs.(a) <- t.fregs.(a) -. t.fregs.(b)
  | Isa.Fmul (a, b) -> t.fregs.(a) <- t.fregs.(a) *. t.fregs.(b)
  | Isa.Fdiv (a, b) -> t.fregs.(a) <- t.fregs.(a) /. t.fregs.(b)
  | Isa.Fmov (a, b) -> t.fregs.(a) <- t.fregs.(b)
  | Isa.Fmovi (f, bits) -> t.fregs.(f) <- Int64.float_of_bits bits
  | Isa.Fcvt_if (f, r) -> t.fregs.(f) <- Int64.to_float t.regs.(r)
  | Isa.Fcvt_fi (r, f) -> t.regs.(r) <- Int64.of_float (Float.trunc t.fregs.(f))
  | Isa.Fcmp (a, b) ->
      t.flags.zf <- t.fregs.(a) = t.fregs.(b);
      t.flags.lt <- t.fregs.(a) < t.fregs.(b));
  t.instret <- Int64.add t.instret 1L;
  t.cycles <- Int64.add t.cycles (Int64.of_int (cost insn))

let run ?(max_steps = 2_000_000_000) t : stop =
  let rec go n =
    if n >= max_steps then Limit
    else
      match exec_step t with
      | () -> go (n + 1)
      | exception Stopped s -> s
      | exception Rvsim.Mem.Fault a -> Fault ("memory", a)
  in
  go 0

let stdout_contents t = Buffer.contents t.stdout_buf

let pp_stop fmt = function
  | Exited c -> Format.fprintf fmt "exited(%d)" c
  | Trap_hit a -> Format.fprintf fmt "trap@0x%Lx" a
  | Fault (m, a) -> Format.fprintf fmt "fault(%s)@0x%Lx" m a
  | Limit -> Format.fprintf fmt "limit"
