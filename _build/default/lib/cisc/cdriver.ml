(* CISC-64 driver: mini-C source -> loaded machine, plus the runtime.
   The layout parallels the RISC-V driver: code at 0x1000, globals at
   0x300000, stack below 0x7FF0000. *)

open Casm

exception Link_error of string

let text_base = 0x1000L
let data_base = 0x300000L
let stack_top = 0x7FF0000L

let i x = I x

let runtime =
  [
    L "_start";
    CallL "main";
    i (Isa.Movi (7, 93L));
    i Isa.Syscall;
    (* long __clock_ns(void) *)
    L "__clock_ns";
    i (Isa.Addi (Isa.sp, -16l));
    i (Isa.Movi (0, 0L));
    i (Isa.Mov (1, Isa.sp));
    i (Isa.Movi (7, 113L));
    i Isa.Syscall;
    i (Isa.Load (5, Isa.sp, 0l));
    i (Isa.Load (6, Isa.sp, 8l));
    i (Isa.Movi (7, 1_000_000_000L));
    i (Isa.Imul (5, 7));
    i (Isa.Add (5, 6));
    i (Isa.Mov (0, 5));
    i (Isa.Addi (Isa.sp, 16l));
    i Isa.Ret;
    (* void __print_int(long v): digits into a stack buffer, then write *)
    L "__print_int";
    i (Isa.Addi (Isa.sp, -48l));
    (* cursor R5 = sp+32; '\n' at [sp+32] *)
    i (Isa.Mov (5, Isa.sp));
    i (Isa.Addi (5, 32l));
    i (Isa.Movi (6, 10L));
    i (Isa.Store (6, 5, 0l));
    (* sign flag R8 (callee-saved by convention, but we are a leaf) *)
    i (Isa.Movi (8, 0L));
    i (Isa.Cmpi (0, 0l));
    JccL (Isa.Ge, "__cpi_pos");
    i (Isa.Movi (8, 1L));
    i (Isa.Neg 0);
    L "__cpi_pos";
    i (Isa.Movi (9, 10L));
    L "__cpi_digit";
    i (Isa.Mov (6, 0));
    i (Isa.Irem (6, 9));
    i (Isa.Addi (6, 48l));
    i (Isa.Addi (5, -1l));
    (* store low byte: full 8-byte store would clobber; emulate byte store
       with read-modify-write via shifts is overkill — we store 8 bytes at
       a descending cursor, so only the low byte position matters as long
       as later stores do not overwrite earlier digits.  A full store at
       cursor writes digits beyond... so place digits via 8-byte stores to
       a parallel buffer is wrong; instead keep digits in a register? The
       pragmatic fix: write the byte by combining. *)
    i (Isa.Push 7);
    i (Isa.Load (7, 5, 0l));
    i (Isa.Movi (10, 0xFFFFFFFFFFFFFF00L));
    i (Isa.And_ (7, 10));
    i (Isa.Or_ (7, 6));
    i (Isa.Store (7, 5, 0l));
    i (Isa.Pop 7);
    i (Isa.Mov (6, 0));
    i (Isa.Idiv (0, 9));
    i (Isa.Cmpi (0, 0l));
    JccL (Isa.Ne, "__cpi_digit");
    i (Isa.Cmpi (8, 0l));
    JccL (Isa.Eq, "__cpi_nosign");
    i (Isa.Addi (5, -1l));
    i (Isa.Push 7);
    i (Isa.Load (7, 5, 0l));
    i (Isa.Movi (10, 0xFFFFFFFFFFFFFF00L));
    i (Isa.And_ (7, 10));
    i (Isa.Movi (6, 45L));
    i (Isa.Or_ (7, 6));
    i (Isa.Store (7, 5, 0l));
    i (Isa.Pop 7);
    L "__cpi_nosign";
    (* write(1, R5, sp+33 - R5) *)
    i (Isa.Mov (2, Isa.sp));
    i (Isa.Addi (2, 33l));
    i (Isa.Sub (2, 5));
    i (Isa.Mov (1, 5));
    i (Isa.Movi (0, 1L));
    i (Isa.Movi (7, 64L));
    i Isa.Syscall;
    i (Isa.Addi (Isa.sp, 48l));
    i Isa.Ret;
    (* void __print_char(long c) *)
    L "__print_char";
    i (Isa.Addi (Isa.sp, -16l));
    i (Isa.Store (0, Isa.sp, 0l));
    i (Isa.Mov (1, Isa.sp));
    i (Isa.Movi (0, 1L));
    i (Isa.Movi (2, 1L));
    i (Isa.Movi (7, 64L));
    i Isa.Syscall;
    i (Isa.Addi (Isa.sp, 16l));
    i Isa.Ret;
  ]

type compiled = {
  code : Bytes.t;
  labels : (string * int64) list;
  entry : int64;
  fn_addrs : (string * int64) list;
  data : Bytes.t;
  prog : Minicc.Cast.program;
}

let compile (source : string) : compiled =
  let prog = Minicc.Cparse.parse_program source in
  let genv =
    { Cgen.g_globals = Hashtbl.create 16; g_funcs = Hashtbl.create 16 }
  in
  List.iter
    (fun (f : Minicc.Cast.func) ->
      Hashtbl.replace genv.Cgen.g_funcs f.Minicc.Cast.fn_name f)
    prog.Minicc.Cast.funcs;
  if not (Hashtbl.mem genv.Cgen.g_funcs "main") then
    raise (Link_error "no main function");
  let data = Buffer.create 256 in
  List.iter
    (fun (g : Minicc.Cast.global) ->
      let addr = Int64.add data_base (Int64.of_int (Buffer.length data)) in
      Hashtbl.replace genv.Cgen.g_globals g.Minicc.Cast.g_name
        (addr, g.Minicc.Cast.g_ty);
      for k = 0 to g.Minicc.Cast.g_count - 1 do
        let v = try List.nth g.Minicc.Cast.g_init k with _ -> 0L in
        Buffer.add_int64_le data v
      done)
    prog.Minicc.Cast.globals;
  let items =
    runtime @ List.concat_map (Cgen.gen_func genv) prog.Minicc.Cast.funcs
  in
  let r = Casm.assemble ~base:text_base items in
  let fn_addrs =
    List.filter_map
      (fun (f : Minicc.Cast.func) ->
        Option.map
          (fun a -> (f.Minicc.Cast.fn_name, a))
          (List.assoc_opt f.Minicc.Cast.fn_name r.Casm.labels))
      prog.Minicc.Cast.funcs
  in
  {
    code = r.Casm.code;
    labels = r.Casm.labels;
    entry = text_base;
    fn_addrs;
    data = Buffer.to_bytes data;
    prog;
  }

let load (c : compiled) : Emu.t =
  let m = Emu.create () in
  Rvsim.Mem.write_bytes m.Emu.mem text_base c.code;
  if Bytes.length c.data > 0 then Rvsim.Mem.write_bytes m.Emu.mem data_base c.data;
  m.Emu.pc <- c.entry;
  m.Emu.regs.(Isa.sp) <- stack_top;
  m

let run ?(max_steps = 2_000_000_000) (source : string) =
  let m = load (compile source) in
  let stop = Emu.run ~max_steps m in
  (stop, Emu.stdout_contents m)
