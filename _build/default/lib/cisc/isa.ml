(* CISC-64: the comparator ISA standing in for x86-64 (see DESIGN.md).

   Deliberately x86-flavoured where it matters to the paper's argument:
     - two-operand ALU instructions that set condition flags;
     - a single-instruction memory increment (INC [abs]) — the natural
       x86 counter snippet — which *requires* the flags to be preserved
       around instrumentation (PUSHF/POPF), the very cost the paper's
       dead-register optimization avoids on RISC-V;
     - CALL/RET push/pop the return address on the stack (no link
       register);
     - variable-length encoding (1..11 bytes) and a 1-byte TRAP (int3);
     - 16 GPRs (R4 = sp), 8 double-precision FP registers.

   Registers: R0-R3 argument/result, R4 = SP, R5-R7 caller-saved temps,
   R8-R15 callee-saved.  Syscall: number in R7, args R0-R2, result R0
   (same numbers as the RISC-V side so the Syscall layer is shared in
   spirit). *)

type cc = Eq | Ne | Lt | Ge | Le | Gt

type insn =
  | Mov of int * int (* r1 <- r2 *)
  | Movi of int * int64
  | Load of int * int * int32 (* r1 <- [r2 + disp] *)
  | Store of int * int * int32 (* [r2 + disp] <- r1 *)
  | Add of int * int (* flags *)
  | Sub of int * int (* flags *)
  | And_ of int * int
  | Or_ of int * int
  | Xor_ of int * int
  | Cmp of int * int (* flags only *)
  | Addi of int * int32 (* flags *)
  | Cmpi of int * int32
  | Imul of int * int
  | Idiv of int * int
  | Irem of int * int
  | Shli of int * int
  | Sari of int * int
  | Neg of int
  | Jmp of int32 (* rel to end of insn *)
  | Jcc of cc * int32
  | Call of int32
  | Ret
  | Push of int
  | Pop of int
  | IncAbs of int64 (* INC qword [abs] — the x86-style counter bump *)
  | Pushf
  | Popf
  | Syscall
  | Trap (* 1-byte breakpoint *)
  | Setcc of cc * int (* r <- flags as 0/1 *)
  | Fload of int * int * int32 (* f <- [r + disp] *)
  | Fstore of int * int * int32
  | Fadd of int * int
  | Fsub of int * int
  | Fmul of int * int
  | Fdiv of int * int
  | Fmov of int * int
  | Fcvt_if of int * int (* f <- (double) r *)
  | Fcvt_fi of int * int (* r <- (int64) f, truncating *)
  | Fcmp of int * int (* flags *)
  | Fmovi of int * int64 (* f <- bits *)

let cc_code = function Eq -> 0 | Ne -> 1 | Lt -> 2 | Ge -> 3 | Le -> 4 | Gt -> 5

let cc_of_code = function
  | 0 -> Eq | 1 -> Ne | 2 -> Lt | 3 -> Ge | 4 -> Le | 5 -> Gt
  | c -> invalid_arg (Printf.sprintf "bad cc %d" c)

let sp = 4

(* --- encoding ---------------------------------------------------------------- *)

let rr a b = Char.chr (((a land 0xF) lsl 4) lor (b land 0xF))

let encode (buf : Buffer.t) (i : insn) =
  let u8 v = Buffer.add_char buf (Char.chr (v land 0xFF)) in
  let i32 v = Buffer.add_int32_le buf v in
  let i64 v = Buffer.add_int64_le buf v in
  match i with
  | Mov (a, b) -> u8 0x01; Buffer.add_char buf (rr a b)
  | Movi (a, v) -> u8 0x02; u8 a; i64 v
  | Load (a, b, d) -> u8 0x03; Buffer.add_char buf (rr a b); i32 d
  | Store (a, b, d) -> u8 0x04; Buffer.add_char buf (rr a b); i32 d
  | Add (a, b) -> u8 0x05; Buffer.add_char buf (rr a b)
  | Sub (a, b) -> u8 0x06; Buffer.add_char buf (rr a b)
  | And_ (a, b) -> u8 0x07; Buffer.add_char buf (rr a b)
  | Or_ (a, b) -> u8 0x08; Buffer.add_char buf (rr a b)
  | Xor_ (a, b) -> u8 0x09; Buffer.add_char buf (rr a b)
  | Cmp (a, b) -> u8 0x0A; Buffer.add_char buf (rr a b)
  | Addi (a, v) -> u8 0x0B; u8 a; i32 v
  | Cmpi (a, v) -> u8 0x0F; u8 a; i32 v
  | Imul (a, b) -> u8 0x0C; Buffer.add_char buf (rr a b)
  | Idiv (a, b) -> u8 0x0D; Buffer.add_char buf (rr a b)
  | Irem (a, b) -> u8 0x0E; Buffer.add_char buf (rr a b)
  | Shli (a, n) -> u8 0x1B; Buffer.add_char buf (rr a n)
  | Sari (a, n) -> u8 0x1C; Buffer.add_char buf (rr a n)
  | Neg a -> u8 0x1D; u8 a
  | Jmp rel -> u8 0x10; i32 rel
  | Jcc (c, rel) -> u8 0x11; u8 (cc_code c); i32 rel
  | Call rel -> u8 0x12; i32 rel
  | Ret -> u8 0x13
  | Push a -> u8 0x14; u8 a
  | Pop a -> u8 0x15; u8 a
  | IncAbs addr -> u8 0x16; i64 addr
  | Pushf -> u8 0x17
  | Popf -> u8 0x18
  | Syscall -> u8 0x19
  | Trap -> u8 0x1A
  | Setcc (c, a) -> u8 0x1E; Buffer.add_char buf (rr (cc_code c) a)
  | Fload (f, r, d) -> u8 0x20; Buffer.add_char buf (rr f r); i32 d
  | Fstore (f, r, d) -> u8 0x21; Buffer.add_char buf (rr f r); i32 d
  | Fadd (a, b) -> u8 0x22; Buffer.add_char buf (rr a b)
  | Fsub (a, b) -> u8 0x23; Buffer.add_char buf (rr a b)
  | Fmul (a, b) -> u8 0x24; Buffer.add_char buf (rr a b)
  | Fdiv (a, b) -> u8 0x25; Buffer.add_char buf (rr a b)
  | Fcvt_if (f, r) -> u8 0x26; Buffer.add_char buf (rr f r)
  | Fcvt_fi (r, f) -> u8 0x27; Buffer.add_char buf (rr r f)
  | Fcmp (a, b) -> u8 0x28; Buffer.add_char buf (rr a b)
  | Fmov (a, b) -> u8 0x29; Buffer.add_char buf (rr a b)
  | Fmovi (f, v) -> u8 0x2A; u8 f; i64 v

let length (i : insn) =
  match i with
  | Ret | Pushf | Popf | Syscall | Trap -> 1
  | Mov _ | Add _ | Sub _ | And_ _ | Or_ _ | Xor_ _ | Cmp _ | Imul _
  | Idiv _ | Irem _ | Shli _ | Sari _ | Setcc _ | Fadd _ | Fsub _ | Fmul _
  | Fdiv _ | Fcvt_if _ | Fcvt_fi _ | Fcmp _ | Fmov _ -> 2
  | Neg _ | Push _ | Pop _ -> 2
  | Jmp _ | Call _ -> 5
  | Jcc _ -> 6
  | Addi _ | Cmpi _ -> 6
  | Load _ | Store _ | Fload _ | Fstore _ -> 6
  | IncAbs _ -> 9 (* opcode + imm64, no register byte *)
  | Fmovi _ | Movi _ -> 10

(* --- decoding ----------------------------------------------------------------- *)

exception Decode_error of int64

(* [read8 addr] etc. supplied by the caller; returns (insn, length) *)
let decode ~(read8 : int64 -> int) ~(read32 : int64 -> int32)
    ~(read64 : int64 -> int64) (pc : int64) : insn * int =
  let at off = Int64.add pc (Int64.of_int off) in
  let op = read8 pc in
  let m () = read8 (at 1) in
  let hi () = (m () lsr 4) land 0xF and lo () = m () land 0xF in
  match op with
  | 0x01 -> (Mov (hi (), lo ()), 2)
  | 0x02 -> (Movi (m (), read64 (at 2)), 10)
  | 0x03 -> (Load (hi (), lo (), read32 (at 2)), 6)
  | 0x04 -> (Store (hi (), lo (), read32 (at 2)), 6)
  | 0x05 -> (Add (hi (), lo ()), 2)
  | 0x06 -> (Sub (hi (), lo ()), 2)
  | 0x07 -> (And_ (hi (), lo ()), 2)
  | 0x08 -> (Or_ (hi (), lo ()), 2)
  | 0x09 -> (Xor_ (hi (), lo ()), 2)
  | 0x0A -> (Cmp (hi (), lo ()), 2)
  | 0x0B -> (Addi (m (), read32 (at 2)), 6)
  | 0x0F -> (Cmpi (m (), read32 (at 2)), 6)
  | 0x0C -> (Imul (hi (), lo ()), 2)
  | 0x0D -> (Idiv (hi (), lo ()), 2)
  | 0x0E -> (Irem (hi (), lo ()), 2)
  | 0x1B -> (Shli (hi (), lo ()), 2)
  | 0x1C -> (Sari (hi (), lo ()), 2)
  | 0x1D -> (Neg (m ()), 2)
  | 0x10 -> (Jmp (read32 (at 1)), 5)
  | 0x11 -> (Jcc (cc_of_code (m ()), read32 (at 2)), 6)
  | 0x12 -> (Call (read32 (at 1)), 5)
  | 0x13 -> (Ret, 1)
  | 0x14 -> (Push (m ()), 2)
  | 0x15 -> (Pop (m ()), 2)
  | 0x16 -> (IncAbs (read64 (at 1)), 9)
  | 0x17 -> (Pushf, 1)
  | 0x18 -> (Popf, 1)
  | 0x19 -> (Syscall, 1)
  | 0x1A -> (Trap, 1)
  | 0x1E -> (Setcc (cc_of_code (hi ()), lo ()), 2)
  | 0x20 -> (Fload (hi (), lo (), read32 (at 2)), 6)
  | 0x21 -> (Fstore (hi (), lo (), read32 (at 2)), 6)
  | 0x22 -> (Fadd (hi (), lo ()), 2)
  | 0x23 -> (Fsub (hi (), lo ()), 2)
  | 0x24 -> (Fmul (hi (), lo ()), 2)
  | 0x25 -> (Fdiv (hi (), lo ()), 2)
  | 0x26 -> (Fcvt_if (hi (), lo ()), 2)
  | 0x27 -> (Fcvt_fi (hi (), lo ()), 2)
  | 0x28 -> (Fcmp (hi (), lo ()), 2)
  | 0x29 -> (Fmov (hi (), lo ()), 2)
  | 0x2A -> (Fmovi (m (), read64 (at 2)), 10)
  | _ -> raise (Decode_error pc)

let is_control_flow = function
  | Jmp _ | Jcc _ | Call _ | Ret -> true
  | _ -> false
