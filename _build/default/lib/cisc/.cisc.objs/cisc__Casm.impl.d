lib/cisc/casm.ml: Buffer Bytes Hashtbl Int64 Isa List
