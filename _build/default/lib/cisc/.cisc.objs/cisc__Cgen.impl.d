lib/cisc/cgen.ml: Casm Format Hashtbl Int32 Int64 Isa List Minicc Option Printf
