lib/cisc/instrument.ml: Buffer Bytes Cdriver Char Emu Hashtbl Int64 Isa List Rvsim
