lib/cisc/isa.ml: Buffer Char Int64 Printf
