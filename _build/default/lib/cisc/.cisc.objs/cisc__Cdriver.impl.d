lib/cisc/cdriver.ml: Array Buffer Bytes Casm Cgen Emu Hashtbl Int64 Isa List Minicc Option Rvsim
