lib/cisc/emu.ml: Array Buffer Bytes Float Format Hashtbl Int32 Int64 Isa Rvsim
