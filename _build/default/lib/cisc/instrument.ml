(* Binary instrumentation for CISC-64: the comparator for the paper's x86
   column.

   Block discovery is the classic leader algorithm over a function's code
   range; blocks are relocated into a trampoline area with rel32 branch
   fixups; springboards are the 5-byte JMP rel32, falling back to the
   1-byte TRAP (int3 analogue) for tiny blocks.

   The counter snippet is the natural x86 one: a single memory-increment
   instruction (INC [abs]).  Because INC writes the condition flags, and
   this Dyninst generation has no flag-liveness analysis (the paper §4.3:
   the dead-register allocation optimization exists only on the RISC-V
   side, "will be soon added to the x86 version"), the snippet must
   bracket the increment with PUSHF/POPF — that serialization is where
   the x86 overhead comes from. *)

type binary = {
  code : Bytes.t;
  base : int64;
  entry : int64;
  fn_addrs : (string * int64) list;
}

let of_compiled (c : Cdriver.compiled) : binary =
  { code = c.Cdriver.code; base = Cdriver.text_base; entry = c.Cdriver.entry;
    fn_addrs = c.Cdriver.fn_addrs }

exception Instrument_error of string

let decode_at (b : binary) (addr : int64) : Isa.insn * int =
  let off a = Int64.to_int (Int64.sub a b.base) in
  Isa.decode
    ~read8:(fun a -> Char.code (Bytes.get b.code (off a)))
    ~read32:(fun a -> Bytes.get_int32_le b.code (off a))
    ~read64:(fun a -> Bytes.get_int64_le b.code (off a))
    addr

(* function extent: entry .. next function (or code end) *)
let function_span (b : binary) (entry : int64) : int64 * int64 =
  let ends =
    List.filter_map
      (fun (_, a) -> if Int64.compare a entry > 0 then Some a else None)
      b.fn_addrs
  in
  let hi =
    List.fold_left
      (fun acc a -> if Int64.compare a acc < 0 then a else acc)
      (Int64.add b.base (Int64.of_int (Bytes.length b.code)))
      ends
  in
  (entry, hi)

(* leader-based basic-block discovery within [lo, hi) *)
let blocks_of_function (b : binary) (entry : int64) : (int64 * int64) list =
  let lo, hi = function_span b entry in
  let leaders = Hashtbl.create 16 in
  Hashtbl.replace leaders lo ();
  let rec scan pc =
    if Int64.compare pc hi >= 0 then ()
    else begin
      let insn, len = decode_at b pc in
      let next = Int64.add pc (Int64.of_int len) in
      (match insn with
      | Isa.Jmp rel ->
          let tgt = Int64.add next (Int64.of_int32 rel) in
          if Int64.compare tgt lo >= 0 && Int64.compare tgt hi < 0 then
            Hashtbl.replace leaders tgt ();
          if Int64.compare next hi < 0 then Hashtbl.replace leaders next ()
      | Isa.Jcc (_, rel) ->
          let tgt = Int64.add next (Int64.of_int32 rel) in
          if Int64.compare tgt lo >= 0 && Int64.compare tgt hi < 0 then
            Hashtbl.replace leaders tgt ();
          if Int64.compare next hi < 0 then Hashtbl.replace leaders next ()
      | Isa.Ret -> if Int64.compare next hi < 0 then Hashtbl.replace leaders next ()
      | _ -> ());
      scan next
    end
  in
  scan lo;
  let ls = Hashtbl.fold (fun a () acc -> a :: acc) leaders [] |> List.sort Int64.compare in
  let rec pair = function
    | [] -> []
    | [ last ] -> [ (last, hi) ]
    | a :: (b :: _ as rest) -> (a, b) :: pair rest
  in
  pair ls

(* --- instrumentation ------------------------------------------------------------ *)

type request = { rq_block : int64 * int64; rq_counter : int64 }

type t = {
  binary : binary;
  tramp_base : int64;
  mutable requests : request list;
  mutable n_traps : int;
  preserve_flags : bool;
      (* true = the historical x86 behaviour (PUSHF/POPF around INC);
         false models a future flag-liveness optimization *)
}

let create ?(tramp_base = 0x20000L) ?(preserve_flags = true) (binary : binary) : t =
  { binary; tramp_base; requests = []; n_traps = 0; preserve_flags }

let instrument_block t ~(block : int64 * int64) ~(counter : int64) =
  t.requests <- { rq_block = block; rq_counter = counter } :: t.requests

let instrument_function_entry t ~(entry : int64) ~(counter : int64) =
  match blocks_of_function t.binary entry with
  | first :: _ -> instrument_block t ~block:first ~counter
  | [] -> raise (Instrument_error "empty function")

let instrument_all_blocks t ~(entry : int64) ~(counter : int64) =
  List.iter
    (fun blk -> instrument_block t ~block:blk ~counter)
    (blocks_of_function t.binary entry)

(* relocate the instructions of [lo, hi) to [new_base], fixing rel32 *)
let relocate (t : t) (lo : int64) (hi : int64) (buf : Buffer.t)
    ~(new_base : int64) =
  let rec go pc =
    if Int64.compare pc hi >= 0 then ()
    else begin
      let insn, len = decode_at t.binary pc in
      let next = Int64.add pc (Int64.of_int len) in
      let new_pc = Int64.add new_base (Int64.of_int (Buffer.length buf)) in
      let new_next = Int64.add new_pc (Int64.of_int len) in
      let fix rel =
        let target = Int64.add next (Int64.of_int32 rel) in
        Int64.to_int32 (Int64.sub target new_next)
      in
      (match insn with
      | Isa.Jmp rel -> Isa.encode buf (Isa.Jmp (fix rel))
      | Isa.Jcc (c, rel) -> Isa.encode buf (Isa.Jcc (c, fix rel))
      | Isa.Call rel -> Isa.encode buf (Isa.Call (fix rel))
      | other -> Isa.encode buf other);
      go next
    end
  in
  go lo

(* the counter snippet: INC [abs], bracketed by flag save/restore unless
   flags liveness is assumed *)
let snippet (t : t) (buf : Buffer.t) (counter : int64) =
  if t.preserve_flags then begin
    Isa.encode buf Isa.Pushf;
    Isa.encode buf (Isa.IncAbs counter);
    Isa.encode buf Isa.Popf
  end
  else Isa.encode buf (Isa.IncAbs counter)

(* Apply all requests to [machine]: write trampolines + springboards. *)
let apply (t : t) (m : Emu.t) : unit =
  let tramp = Buffer.create 1024 in
  let patches = ref [] in
  List.iter
    (fun rq ->
      let lo, hi = rq.rq_block in
      let tramp_addr = Int64.add t.tramp_base (Int64.of_int (Buffer.length tramp)) in
      snippet t tramp rq.rq_counter;
      relocate t lo hi tramp ~new_base:t.tramp_base;
      (* if the block fell through, jump back to its end *)
      let last_is_transfer =
        (* decode the last instruction of the block *)
        let rec last pc prev =
          if Int64.compare pc hi >= 0 then prev
          else
            let insn, len = decode_at t.binary pc in
            last (Int64.add pc (Int64.of_int len)) (Some insn)
        in
        match last lo None with
        | Some (Isa.Jmp _ | Isa.Ret) -> true
        | _ -> false
      in
      if not last_is_transfer then begin
        let here =
          Int64.add t.tramp_base (Int64.of_int (Buffer.length tramp + 5))
        in
        Isa.encode tramp (Isa.Jmp (Int64.to_int32 (Int64.sub hi here)))
      end;
      (* springboard *)
      let bsize = Int64.to_int (Int64.sub hi lo) in
      let sb = Buffer.create 8 in
      if bsize >= 5 then begin
        let off = Int64.sub tramp_addr (Int64.add lo 5L) in
        Isa.encode sb (Isa.Jmp (Int64.to_int32 off))
      end
      else begin
        Isa.encode sb Isa.Trap;
        t.n_traps <- t.n_traps + 1;
        Hashtbl.replace m.Emu.redirects lo tramp_addr
      end;
      patches := (lo, bsize, Buffer.to_bytes sb) :: !patches)
    (List.rev t.requests);
  (* install *)
  Rvsim.Mem.write_bytes m.Emu.mem t.tramp_base (Buffer.to_bytes tramp);
  List.iter
    (fun (lo, bsize, sb) ->
      Rvsim.Mem.write_bytes m.Emu.mem lo (Bytes.make bsize '\x00');
      Rvsim.Mem.write_bytes m.Emu.mem lo sb)
    !patches
