(* Tiny two-pass assembler for CISC-64: all label-relative forms have
   fixed sizes (rel32), so no relaxation is needed. *)

type item =
  | I of Isa.insn
  | L of string
  | JmpL of string
  | JccL of Isa.cc * string
  | CallL of string

exception Undefined_label of string

type result = { code : Bytes.t; labels : (string * int64) list }

let item_size = function
  | I i -> Isa.length i
  | L _ -> 0
  | JmpL _ | CallL _ -> 5
  | JccL _ -> 6

let assemble ?(base = 0L) (items : item list) : result =
  let offsets = Hashtbl.create 32 in
  let cur = ref base in
  List.iter
    (fun it ->
      (match it with L l -> Hashtbl.replace offsets l !cur | _ -> ());
      cur := Int64.add !cur (Int64.of_int (item_size it)))
    items;
  let resolve l =
    match Hashtbl.find_opt offsets l with
    | Some a -> a
    | None -> raise (Undefined_label l)
  in
  let buf = Buffer.create 1024 in
  let pc = ref base in
  List.iter
    (fun it ->
      let size = item_size it in
      let next = Int64.add !pc (Int64.of_int size) in
      (match it with
      | I i -> Isa.encode buf i
      | L _ -> ()
      | JmpL l -> Isa.encode buf (Isa.Jmp (Int64.to_int32 (Int64.sub (resolve l) next)))
      | JccL (c, l) ->
          Isa.encode buf (Isa.Jcc (c, Int64.to_int32 (Int64.sub (resolve l) next)))
      | CallL l ->
          Isa.encode buf (Isa.Call (Int64.to_int32 (Int64.sub (resolve l) next))));
      pc := next)
    items;
  {
    code = Buffer.to_bytes buf;
    labels =
      Hashtbl.fold (fun l a acc -> (l, a) :: acc) offsets []
      |> List.sort (fun (_, a) (_, b) -> Int64.compare a b);
  }

let label_addr r l =
  match List.assoc_opt l r.labels with
  | Some a -> a
  | None -> raise (Undefined_label l)
