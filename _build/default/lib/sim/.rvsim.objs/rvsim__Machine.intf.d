lib/sim/machine.mli: Cost Format Mem Riscv
