lib/sim/machine.ml: Array Bitmanip Bits Cost Decode Dyn_util Float Format Fpu Insn Int64 List Mem Op Printf Riscv
