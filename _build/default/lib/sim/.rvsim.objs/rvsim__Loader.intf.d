lib/sim/loader.mli: Cost Elfkit Hashtbl Machine Syscall
