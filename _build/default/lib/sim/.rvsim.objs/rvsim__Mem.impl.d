lib/sim/mem.ml: Buffer Bytes Char Hashtbl Int32 Int64
