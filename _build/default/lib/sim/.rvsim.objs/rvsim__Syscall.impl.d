lib/sim/syscall.ml: Buffer Bytes Cost Dyn_util Int64 Machine Mem
