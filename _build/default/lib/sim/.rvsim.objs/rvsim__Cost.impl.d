lib/sim/cost.ml: Int64 Riscv
