lib/sim/loader.ml: Bytes Dyn_util Elfkit Hashtbl Int64 List Machine Mem Read Riscv String Syscall Types
