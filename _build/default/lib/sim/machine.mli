(** The RV64GC machine: state and interpreter — the hardware substitute
    for the paper's SiFive P550 (see DESIGN.md substitutions).

    Decoded instructions are cached per executable region;
    {!flush_icache} (triggered by FENCE.I and by ProcControlAPI after
    patching code) invalidates the cache, mirroring what real
    instrumentation must do on hardware. *)

type region = {
  r_base : int64;
  r_size : int;
  slots : Riscv.Insn.t option array;  (** decode cache, one per halfword *)
}

(** Why execution stopped. *)
type stop =
  | Exited of int
  | Ebreak of int64  (** pc of an ebreak (breakpoints, trap springboards) *)
  | Fault of string * int64
  | Limit  (** step budget exhausted *)

type ecall_action = Ecall_continue | Ecall_exit of int

type t = {
  regs : int64 array;  (** x0..x31; x0 kept 0 *)
  fregs : int64 array;  (** raw f0..f31 bits, NaN-boxed singles *)
  mem : Mem.t;
  mutable pc : int64;
  mutable cycles : int64;  (** simulated cycles per the cost model *)
  mutable instret : int64;
  mutable fcsr : int;
  mutable reservation : int64 option;  (** LR/SC reservation *)
  mutable code_regions : region list;
  mutable last_region : region option;
  mutable on_ecall : t -> ecall_action;  (** the attached OS *)
  mutable trace : (int64 -> Riscv.Insn.t -> unit) option;
  model : Cost.model;
}

val create : ?model:Cost.model -> unit -> t
val get_reg : t -> int -> int64
val set_reg : t -> int -> int64 -> unit
val get_freg : t -> int -> int64
val set_freg : t -> int -> int64 -> unit

(** Register an executable region so its decodes are cached. *)
val add_code_region : t -> base:int64 -> size:int -> region

(** Drop all cached decodes (FENCE.I semantics; call after patching). *)
val flush_icache : t -> unit

val csr_read : t -> int -> int64
val csr_write : t -> int -> int64 -> unit

(** Execute one instruction; [Some stop] if the machine cannot continue. *)
val step : t -> stop option

(** Run until a stop event or [max_steps]. *)
val run : ?max_steps:int -> t -> stop

val pp_stop : Format.formatter -> stop -> unit

(**/**)

exception Stopped of stop

val exec_step : t -> unit
val fetch : t -> int64 -> Riscv.Insn.t
