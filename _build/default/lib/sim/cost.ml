(* Per-instruction cycle-cost model.

   The paper's RISC-V numbers come from a SiFive P550 (an in-order-ish
   3-wide core at 1.4 GHz).  We model a simple in-order scalar pipeline:
   most integer ops are 1 cycle, loads have a 3-cycle use latency folded
   into the instruction, multiplies 3, divides ~20, FP adds/muls 4-5,
   FP divide ~25, taken branches pay a 2-cycle redirect penalty.  The
   absolute numbers are synthetic, but because both the uninstrumented
   and instrumented runs use the same model, the *overhead ratios* the
   paper reports are preserved (see DESIGN.md, substitutions). *)

type model = {
  freq_hz : int64; (* simulated core frequency *)
  cost : Riscv.Op.t -> int;
  taken_branch_penalty : int;
}

let default_cost (op : Riscv.Op.t) =
  let open Riscv.Op in
  match op with
  | LB | LH | LW | LD | LBU | LHU | LWU | FLW | FLD -> 2
  | SB | SH | SW | SD | FSW | FSD -> 1
  | MUL | MULH | MULHSU | MULHU | MULW -> 3
  | DIV | DIVU | REM | REMU | DIVW | DIVUW | REMW | REMUW -> 20
  | FADD_S | FSUB_S | FADD_D | FSUB_D -> 4
  | FMUL_S | FMUL_D -> 5
  | FMADD_S | FMSUB_S | FNMSUB_S | FNMADD_S
  | FMADD_D | FMSUB_D | FNMSUB_D | FNMADD_D -> 6
  | FDIV_S | FSQRT_S -> 20
  | FDIV_D | FSQRT_D -> 27
  | FCVT_W_S | FCVT_WU_S | FCVT_L_S | FCVT_LU_S | FCVT_S_W | FCVT_S_WU
  | FCVT_S_L | FCVT_S_LU | FCVT_W_D | FCVT_WU_D | FCVT_L_D | FCVT_LU_D
  | FCVT_D_W | FCVT_D_WU | FCVT_D_L | FCVT_D_LU | FCVT_S_D | FCVT_D_S -> 4
  | FMV_X_W | FMV_W_X | FMV_X_D | FMV_D_X -> 2
  | LR_W | LR_D | SC_W | SC_D -> 5
  | op when is_amo op -> 8
  | FENCE | FENCE_I -> 10
  | ECALL | EBREAK -> 30
  | CSRRW | CSRRS | CSRRC | CSRRWI | CSRRSI | CSRRCI -> 5
  | _ -> 1

(* 1.4 GHz, matching the paper's SiFive P550.  Taken-branch penalty 0:
   the P550 predicts the steady-state loop branches and the unconditional
   springboard/trampoline jumps essentially perfectly, so the model folds
   redirects into throughput.  (Set it >0 to model a predictor-less
   core; the instrumentation overhead rises accordingly.) *)
let p550 = { freq_hz = 1_400_000_000L; cost = default_cost; taken_branch_penalty = 0 }

let cycles_to_ns m cycles =
  (* ns = cycles * 1e9 / freq *)
  Int64.div (Int64.mul cycles 1_000_000_000L) m.freq_hz
