(* Instrumentation points (paper §2): where instrumentation can be
   inserted — function entry/exit, call sites, block entries, individual
   instructions, branch-taken edges and loop points. *)

open Parse_api

type kind =
  | Func_entry
  | Func_exit
  | Call_site
  | Block_entry
  | Before_insn
  | Edge_taken (* the taken edge of the conditional branch at p_addr *)
  | Loop_entry
  | Loop_backedge

type t = {
  p_kind : kind;
  p_func : int64; (* owning function entry *)
  p_block : int64; (* block start *)
  p_addr : int64; (* instruction the point is anchored to *)
}

let kind_name = function
  | Func_entry -> "func-entry"
  | Func_exit -> "func-exit"
  | Call_site -> "call-site"
  | Block_entry -> "block-entry"
  | Before_insn -> "before-insn"
  | Edge_taken -> "edge-taken"
  | Loop_entry -> "loop-entry"
  | Loop_backedge -> "loop-backedge"

let pp fmt p =
  Format.fprintf fmt "%s@0x%Lx (func 0x%Lx)" (kind_name p.p_kind) p.p_addr
    p.p_func

(* --- point discovery ------------------------------------------------------ *)

let func_entry (cfg : Cfg.t) (f : Cfg.func) : t option =
  match Cfg.block_at cfg f.Cfg.f_entry with
  | Some b ->
      Some
        { p_kind = Func_entry; p_func = f.Cfg.f_entry; p_block = b.Cfg.b_start;
          p_addr = b.Cfg.b_start }
  | None -> None

(* one point per return-terminated block *)
let func_exits (cfg : Cfg.t) (f : Cfg.func) : t list =
  Cfg.blocks_of cfg f
  |> List.filter_map (fun (b : Cfg.block) ->
         if List.exists (fun e -> e.Cfg.ek = Cfg.E_return) b.Cfg.b_out then
           match Cfg.last_insn b with
           | Some term ->
               Some
                 { p_kind = Func_exit; p_func = f.Cfg.f_entry;
                   p_block = b.Cfg.b_start; p_addr = term.Instruction.addr }
           | None -> None
         else None)

let call_sites (cfg : Cfg.t) (f : Cfg.func) : t list =
  Cfg.blocks_of cfg f
  |> List.filter_map (fun (b : Cfg.block) ->
         if List.exists (fun e -> e.Cfg.ek = Cfg.E_call) b.Cfg.b_out then
           match Cfg.last_insn b with
           | Some term ->
               Some
                 { p_kind = Call_site; p_func = f.Cfg.f_entry;
                   p_block = b.Cfg.b_start; p_addr = term.Instruction.addr }
           | None -> None
         else None)

let block_entries (cfg : Cfg.t) (f : Cfg.func) : t list =
  Cfg.blocks_of cfg f
  |> List.map (fun (b : Cfg.block) ->
         { p_kind = Block_entry; p_func = f.Cfg.f_entry;
           p_block = b.Cfg.b_start; p_addr = b.Cfg.b_start })

let before_insn (cfg : Cfg.t) ~(addr : int64) : t option =
  match Cfg.block_containing cfg addr with
  | Some b ->
      Some
        { p_kind = Before_insn; p_func = b.Cfg.b_func; p_block = b.Cfg.b_start;
          p_addr = addr }
  | None -> None

(* the taken edge of the conditional branch ending [b] *)
let edge_taken (b : Cfg.block) : t option =
  match Cfg.last_insn b with
  | Some term when Riscv.Op.is_cond_branch (Instruction.op term) ->
      Some
        { p_kind = Edge_taken; p_func = b.Cfg.b_func; p_block = b.Cfg.b_start;
          p_addr = term.Instruction.addr }
  | _ -> None

let loop_entries (cfg : Cfg.t) (f : Cfg.func) : t list =
  Loops.loops_of_function cfg f
  |> List.map (fun (l : Loops.loop) ->
         { p_kind = Loop_entry; p_func = f.Cfg.f_entry;
           p_block = l.Loops.l_header; p_addr = l.Loops.l_header })

let loop_backedges (cfg : Cfg.t) (f : Cfg.func) : t list =
  Loops.loops_of_function cfg f
  |> List.concat_map (fun (l : Loops.loop) ->
         List.filter_map
           (fun (latch, _header) ->
             match Cfg.block_at cfg latch with
             | Some b -> (
                 match Cfg.last_insn b with
                 | Some term ->
                     Some
                       { p_kind = Loop_backedge; p_func = f.Cfg.f_entry;
                         p_block = latch; p_addr = term.Instruction.addr }
                 | None -> None)
             | None -> None)
           l.Loops.l_back_edges)
