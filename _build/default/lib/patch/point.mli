(** Instrumentation points (paper §2): the locations where snippets can
    be inserted — function-level (entry/exit/call-site), block-level,
    instruction-level, CFG-edge-level and loop-level abstractions. *)

type kind =
  | Func_entry
  | Func_exit
  | Call_site
  | Block_entry
  | Before_insn
  | Edge_taken  (** the taken edge of a conditional branch *)
  | Loop_entry
  | Loop_backedge

type t = {
  p_kind : kind;
  p_func : int64;  (** owning function's entry address *)
  p_block : int64;  (** containing block's start address *)
  p_addr : int64;  (** the instruction the point anchors to *)
}

val kind_name : kind -> string
val pp : Format.formatter -> t -> unit

(** {1 Point discovery from a parsed CFG} *)

val func_entry : Parse_api.Cfg.t -> Parse_api.Cfg.func -> t option

(** One point per return-terminated block of the function. *)
val func_exits : Parse_api.Cfg.t -> Parse_api.Cfg.func -> t list

(** One point per call-site block of the function (anchored at the call
    instruction). *)
val call_sites : Parse_api.Cfg.t -> Parse_api.Cfg.func -> t list

(** One point per basic block. *)
val block_entries : Parse_api.Cfg.t -> Parse_api.Cfg.func -> t list

(** A point just before the instruction at [addr], if it is parsed. *)
val before_insn : Parse_api.Cfg.t -> addr:int64 -> t option

(** The taken edge of the conditional branch terminating [block]. *)
val edge_taken : Parse_api.Cfg.block -> t option

(** One point per natural-loop header. *)
val loop_entries : Parse_api.Cfg.t -> Parse_api.Cfg.func -> t list

(** One point per loop back edge (anchored at the latch's terminator). *)
val loop_backedges : Parse_api.Cfg.t -> Parse_api.Cfg.func -> t list
