(* Trampoline construction: relocate a basic block into the patch area
   with instrumentation woven in, fixing up every PC-sensitive
   instruction (paper §1 "code patching", §3.2.3's auipc sequences).

   Jumps back into original code use absolute-address pseudo-labels
   "@<hex>" resolved by the assembler's external-symbol hook, so the
   standard relaxation machinery (§3.1.2: c.j / jal / auipc+jalr) picks
   the encoding. *)

open Riscv
open Parse_api

let at addr = Printf.sprintf "@%Lx" addr

(* resolve "@<hex>" labels to absolute addresses *)
let abs_symbols label =
  if String.length label > 1 && label.[0] = '@' then
    Int64.of_string_opt ("0x" ^ String.sub label 1 (String.length label - 1))
  else None

(* What gets inserted where inside a relocated block. *)
type insertion = {
  ins_before : int64; (* instruction address the code goes before *)
  ins_items : Asm.item list;
}

type edge_insertion = {
  ei_branch : int64; (* address of the conditional branch *)
  ei_items : Asm.item list;
}

(* Relocate one instruction, fixing PC-sensitive semantics.
   Returns the items plus any deferred stub items (for edge stubs). *)
let relocate_insn ~(edge_stub : (int64 -> string option))
    (ins : Instruction.t) : Asm.item list =
  let i = ins.Instruction.insn in
  let addr = ins.Instruction.addr in
  match i.Insn.op with
  | Op.AUIPC ->
      (* materialize the value auipc would have produced at its original
         address *)
      [ Asm.Li (Reg.x i.Insn.rd, Int64.add addr i.Insn.imm) ]
  | Op.JAL ->
      let tgt = Int64.add addr i.Insn.imm in
      if i.Insn.rd = 0 then [ Asm.J (at tgt) ]
      else if i.Insn.rd = Reg.ra then [ Asm.Call_l (at tgt) ]
      else
        (* unusual link register: emulate with an explicit link value
           pointing at the trampoline continuation *)
        let cont = Printf.sprintf ".Lcont_%Lx" addr in
        [ Asm.La (Reg.x i.Insn.rd, cont); Asm.J (at tgt); Asm.Label cont ]
  | op when Op.is_cond_branch op ->
      let tgt = Int64.add addr i.Insn.imm in
      let dest =
        match edge_stub addr with Some stub -> stub | None -> at tgt
      in
      [ Asm.Br (op, Reg.x i.Insn.rs1, Reg.x i.Insn.rs2, dest) ]
  | _ -> [ Asm.Insn i ]

(* Build the trampoline item list for [b].

   [insertions]: snippet code keyed by the address it must run before.
   [edge_insertions]: snippet code on the taken edge of a branch.
   The trampoline is labelled [entry_label]; execution resumes at the
   block's original successors. *)
let build ~(entry_label : string) (b : Cfg.block)
    ~(insertions : insertion list) ~(edge_insertions : edge_insertion list) :
    Asm.item list =
  let stubs = ref [] in
  let stub_counter = ref 0 in
  let edge_stub branch_addr =
    match
      List.find_opt (fun e -> Int64.equal e.ei_branch branch_addr) edge_insertions
    with
    | None -> None
    | Some e ->
        incr stub_counter;
        let lbl = Printf.sprintf ".Lstub_%Lx_%d" branch_addr !stub_counter in
        let orig_target =
          match Cfg.last_insn b with
          | Some term
            when Int64.equal term.Instruction.addr branch_addr ->
              Int64.add branch_addr term.Instruction.insn.Insn.imm
          | _ ->
              (* the branch must be b's terminator *)
              invalid_arg "edge insertion not on block terminator"
        in
        stubs :=
          !stubs
          @ [ Asm.Label lbl ] @ e.ei_items @ [ Asm.J (at orig_target) ];
        Some lbl
  in
  let before addr =
    List.concat_map
      (fun ins -> if Int64.equal ins.ins_before addr then ins.ins_items else [])
      insertions
  in
  let body =
    List.concat_map
      (fun ins ->
        before ins.Instruction.addr @ relocate_insn ~edge_stub ins)
      b.Cfg.b_insns
  in
  (* does control fall off the end of the relocated code? *)
  let falls_through =
    match Cfg.last_insn b with
    | None -> true
    | Some term -> (
        let op = Instruction.op term in
        match op with
        | Op.JALR -> false (* always transfers *)
        | Op.JAL ->
            (* calls continue; plain jumps do not *)
            term.Instruction.insn.Insn.rd <> 0
        | op when Op.is_cond_branch op -> true
        | _ -> true)
  in
  let tail =
    if falls_through && b.Cfg.b_out <> [] then [ Asm.J (at b.Cfg.b_end) ]
    else []
  in
  (Asm.Label entry_label :: body) @ tail @ !stubs
