lib/patch/point.mli: Format Parse_api
