lib/patch/trampoline.ml: Asm Cfg Insn Instruction Int64 List Op Parse_api Printf Reg Riscv String
