lib/patch/point.ml: Cfg Format Instruction List Loops Parse_api Riscv
