lib/patch/rewriter.mli: Bytes Codegen_api Elfkit Parse_api Point Riscv Symtab
