lib/util/interval_map.ml: Int64 List Map Option
