lib/util/byte_buf.ml: Buffer Bytes Char Int32 Int64
