lib/util/digraph.ml: Hashtbl Int List Map Set
