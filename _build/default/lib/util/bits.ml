(* Bit-level helpers shared by the decoder, encoder and simulator.

   All RISC-V instruction words are manipulated as non-negative [int]
   values (32-bit words fit comfortably in OCaml's 63-bit ints); machine
   values (register contents, addresses) are [int64]. *)

(* [extract x lo len] extracts [len] bits of [x] starting at bit [lo]. *)
let extract x lo len = (x lsr lo) land ((1 lsl len) - 1)

(* [test_bit x i] is bit [i] of [x] as a boolean. *)
let test_bit x i = x land (1 lsl i) <> 0

(* [sign_extend x len] interprets the low [len] bits of [x] as a signed
   two's-complement value and returns it as an OCaml int. *)
let sign_extend x len =
  let x = x land ((1 lsl len) - 1) in
  if test_bit x (len - 1) then x - (1 lsl len) else x

(* [fits_signed v len]: does [v] fit in a signed [len]-bit immediate? *)
let fits_signed v len =
  let lo = Int64.neg (Int64.shift_left 1L (len - 1)) in
  let hi = Int64.sub (Int64.shift_left 1L (len - 1)) 1L in
  Int64.compare lo v <= 0 && Int64.compare v hi <= 0

let fits_signed_int v len = fits_signed (Int64.of_int v) len

(* [fits_unsigned v len]: does non-negative [v] fit in [len] bits? *)
let fits_unsigned v len =
  Int64.compare v 0L >= 0 && Int64.compare v (Int64.shift_left 1L len) < 0

(* int64 counterparts *)
let extract64 x lo len =
  Int64.logand (Int64.shift_right_logical x lo)
    (Int64.sub (Int64.shift_left 1L len) 1L)

let sign_extend64 x len =
  let masked = extract64 x 0 len in
  if extract64 masked (len - 1) 1 = 1L then
    Int64.sub masked (Int64.shift_left 1L len)
  else masked

let is_aligned addr alignment = Int64.rem addr (Int64.of_int alignment) = 0L

(* Truncations used by the simulator's W-suffixed instructions. *)
let to_uint32 (x : int64) = Int64.logand x 0xFFFF_FFFFL
let to_int32_sx (x : int64) = sign_extend64 x 32

let align_up addr alignment =
  let a = Int64.of_int alignment in
  let r = Int64.rem addr a in
  if r = 0L then addr else Int64.add addr (Int64.sub a r)

let align_down addr alignment =
  let a = Int64.of_int alignment in
  Int64.sub addr (Int64.rem addr a)
