(** Traversal parsing (ParseAPI's parser; paper §2.1, §3.2.3).

    Parsing starts from known entry points — the ELF entry and function
    symbols — and follows control-flow transfers, discovering new
    function entries at call and tail-call sites.  jal/jalr
    classification follows the paper's decision procedure (link register
    + backward slice + span tests + jump-table analysis + unresolved
    fallback).  After traversal:

    - {e gap parsing} scans uncovered code-region bytes for function
      prologues;
    - a {e dataflow refinement} pass re-examines unresolved jalr
      terminators with flow-sensitive constant propagation
      ({!Constprop}) and continues traversal when it resolves one. *)

(** Parse a binary into a CFG.

    @param gap_parsing scan coverage gaps for prologues (default true)
    @param domains pre-decode all code regions in parallel across this
    many OCaml domains (default 1 = fully lazy decoding); results are
    identical either way *)
val parse : ?gap_parsing:bool -> ?domains:int -> Symtab.t -> Cfg.t
