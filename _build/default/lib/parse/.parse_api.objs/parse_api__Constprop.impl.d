lib/parse/constprop.ml: Array Cfg Dyn_util Hashtbl Insn Instruction Int64 List Op Reg Riscv
