lib/parse/slice_lite.ml: Dyn_util Insn Instruction Int64 List Op Option Reg Riscv
