lib/parse/loops.ml: Array Cfg Dyn_util Hashtbl I64Set Int64 List
