lib/parse/loops.mli: Cfg Dyn_util Hashtbl
