lib/parse/parser.ml: Array Cfg Constprop Domain Dyn_util Elfkit Hashtbl I64Set Insn Instruction Int64 Jump_table List Logs Op Printf Queue Reg Riscv Slice_lite Symtab
