lib/parse/parser.mli: Cfg Symtab
