lib/parse/cfg.mli: Dyn_util Format Hashtbl Instruction Set Symtab
