lib/parse/cfg.ml: Dyn_util Format Hashtbl Instruction Int64 List Set Symtab
