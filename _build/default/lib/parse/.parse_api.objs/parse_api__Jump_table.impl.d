lib/parse/jump_table.ml: Dyn_util Insn Instruction Int64 List Op Option Reg Riscv Slice_lite Symtab
