(* Parse-time backward constant resolution.

   ParseAPI needs to know where a jalr goes; the paper (§3.2.3) resolves
   the target register with a backward slice.  At parse time we use a
   block-local slice that understands the constant-forming instructions
   compilers emit for long jumps and table bases: auipc / lui / addi /
   addiw / add / slli sequences.  (DataflowAPI provides the full
   interblock slicer; this light version is what the parser itself runs,
   and it fuses the auipc+jalr pairs the paper describes.) *)

open Riscv

(* [resolve insns_rev reg]: the constant value held by [reg] at the point
   after executing the instructions whose *reverse* order is [insns_rev].
   Returns [None] when the value is not statically constant. *)
let rec resolve (insns_rev : Instruction.t list) (reg : int) : int64 option =
  if reg = 0 then Some 0L
  else
    match insns_rev with
    | [] -> None
    | ins :: before ->
        let i = ins.Instruction.insn in
        let defines_reg =
          (not (Op.rd_is_fp i.Insn.op))
          && i.Insn.rd = reg
          && List.mem (Reg.x reg) (Insn.defs i)
        in
        if not defines_reg then
          (* an unrelated instruction; skip it unless it could clobber via
             other means (loads into reg are caught by defines_reg) *)
          resolve before reg
        else begin
          match i.Insn.op with
          | Op.LUI -> Some i.Insn.imm
          | Op.AUIPC -> Some (Int64.add ins.Instruction.addr i.Insn.imm)
          | Op.ADDI ->
              Option.map (fun v -> Int64.add v i.Insn.imm) (resolve before i.Insn.rs1)
          | Op.ADDIW ->
              Option.map
                (fun v -> Dyn_util.Bits.to_int32_sx (Int64.add v i.Insn.imm))
                (resolve before i.Insn.rs1)
          | Op.ADD -> (
              match (resolve before i.Insn.rs1, resolve before i.Insn.rs2) with
              | Some a, Some b -> Some (Int64.add a b)
              | _ -> None)
          | Op.SLLI ->
              Option.map
                (fun v -> Int64.shift_left v (Insn.imm_int i))
                (resolve before i.Insn.rs1)
          | Op.ORI ->
              Option.map (fun v -> Int64.logor v i.Insn.imm) (resolve before i.Insn.rs1)
          | _ -> None
        end

(* Resolve the target of a jalr terminator given the (forward-ordered)
   instructions of its block, excluding the jalr itself. *)
let jalr_target (body : Instruction.t list) (jalr : Insn.t) : int64 option =
  let rev = List.rev body in
  match resolve rev jalr.Insn.rs1 with
  | Some base ->
      Some (Int64.logand (Int64.add base jalr.Insn.imm) (Int64.lognot 1L))
  | None -> None
