(** Natural-loop detection over a function's intraprocedural CFG
    (ParseAPI's loop analysis, listed among the working RISC-V features
    in the paper's §3.3).  Built on dominator analysis: a back edge is an
    edge whose target dominates its source; the loop body is everything
    that reaches the latch without passing the header. *)

type loop = {
  l_header : int64;  (** header block start address *)
  l_blocks : Cfg.I64Set.t;  (** block start addresses in the body *)
  l_back_edges : (int64 * int64) list;  (** (latch block, header) *)
}

val loops_of_function : Cfg.t -> Cfg.func -> loop list

(** [contains a b]: is [b] nested inside [a]? *)
val contains : loop -> loop -> bool

(** 1 = outermost. *)
val loop_nest_depth : loop list -> loop -> int

(**/**)

val graph_of_function :
  Cfg.t -> Cfg.func -> Dyn_util.Digraph.t * (int64, int) Hashtbl.t * int64 array
