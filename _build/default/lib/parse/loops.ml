(* Natural-loop detection over a function's intraprocedural CFG
   (ParseAPI's loop analysis; the paper's §3.3 lists loop analysis among
   the working RISC-V features).  Built on Dyn_util.Digraph's dominator
   machinery. *)

open Cfg

type loop = {
  l_header : int64; (* header block start address *)
  l_blocks : I64Set.t; (* block start addresses in the loop body *)
  l_back_edges : (int64 * int64) list; (* (latch block, header) *)
}

(* Build an int-indexed digraph of [func]'s blocks. *)
let graph_of_function (cfg : Cfg.t) (func : func) =
  let blocks = I64Set.elements func.f_blocks in
  let index = Hashtbl.create 16 in
  List.iteri (fun k a -> Hashtbl.replace index a k) blocks;
  let addr_of = Array.of_list blocks in
  let g = Dyn_util.Digraph.create () in
  List.iteri (fun k _ -> Dyn_util.Digraph.add_node g k) blocks;
  List.iter
    (fun a ->
      match block_at cfg a with
      | None -> ()
      | Some b ->
          List.iter
            (fun succ ->
              match Hashtbl.find_opt index succ with
              | Some k -> Dyn_util.Digraph.add_edge g (Hashtbl.find index a) k
              | None -> ())
            (intra_succs b))
    blocks;
  (g, index, addr_of)

let loops_of_function (cfg : Cfg.t) (func : func) : loop list =
  let g, index, addr_of = graph_of_function cfg func in
  match Hashtbl.find_opt index func.f_entry with
  | None -> []
  | Some root ->
      let nl = Dyn_util.Digraph.natural_loops g root in
      let idoms = Dyn_util.Digraph.idoms g root in
      List.map
        (fun (header, body) ->
          let back_edges =
            Dyn_util.Digraph.IntSet.fold
              (fun n acc ->
                if
                  Dyn_util.Digraph.IntSet.mem header
                    (Dyn_util.Digraph.succs g n)
                  && Dyn_util.Digraph.dominates idoms header n
                then (addr_of.(n), addr_of.(header)) :: acc
                else acc)
              body []
          in
          {
            l_header = addr_of.(header);
            l_blocks =
              Dyn_util.Digraph.IntSet.fold
                (fun n acc -> I64Set.add addr_of.(n) acc)
                body I64Set.empty;
            l_back_edges = back_edges;
          })
        nl

(* Nesting: loop A contains loop B if B's header is in A's body and they
   differ. *)
let contains a b =
  not (Int64.equal a.l_header b.l_header) && I64Set.mem b.l_header a.l_blocks

let loop_nest_depth loops l =
  List.length (List.filter (fun outer -> contains outer l) loops) + 1
