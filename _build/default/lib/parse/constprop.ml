(* Flow-sensitive intraprocedural constant propagation over the integer
   registers of a parsed function.

   This is the "advanced dataflow" refinement the paper describes for
   pointer-based control flow (§2.1, §3.2.3): when the block-local
   backward slice cannot resolve a jalr's target because the address was
   materialized in an earlier block, the parser re-runs classification
   with these flow-sensitive values. *)

open Riscv
open Cfg

type v = C of int64 | Top

let join a b =
  match (a, b) with
  | C x, C y when Int64.equal x y -> C x
  | _ -> Top

type env = v array (* one slot per integer register; x0 pinned to C 0 *)

let fresh_entry_env () =
  let e = Array.make 32 Top in
  e.(0) <- C 0L;
  e

let copy = Array.copy

let env_join (a : env) (b : env) : env =
  Array.init 32 (fun k -> join a.(k) b.(k))

let env_equal a b = Array.for_all2 ( = ) a b

(* transfer of one instruction *)
let transfer (env : env) (ins : Instruction.t) : unit =
  let i = ins.Instruction.insn in
  let get r = if r = 0 then C 0L else env.(r) in
  let set r v = if r <> 0 then env.(r) <- v in
  let lift1 f a = match get a with C x -> C (f x) | Top -> Top in
  let lift2 f a b =
    match (get a, get b) with C x, C y -> C (f x y) | _ -> Top
  in
  let result =
    match i.Insn.op with
    | Op.LUI -> Some (C i.Insn.imm)
    | Op.AUIPC -> Some (C (Int64.add ins.Instruction.addr i.Insn.imm))
    | Op.ADDI -> Some (lift1 (fun x -> Int64.add x i.Insn.imm) i.Insn.rs1)
    | Op.ADDIW ->
        Some
          (lift1
             (fun x -> Dyn_util.Bits.to_int32_sx (Int64.add x i.Insn.imm))
             i.Insn.rs1)
    | Op.ADD -> Some (lift2 Int64.add i.Insn.rs1 i.Insn.rs2)
    | Op.SUB -> Some (lift2 Int64.sub i.Insn.rs1 i.Insn.rs2)
    | Op.SLLI ->
        Some (lift1 (fun x -> Int64.shift_left x (Insn.imm_int i)) i.Insn.rs1)
    | Op.ORI -> Some (lift1 (fun x -> Int64.logor x i.Insn.imm) i.Insn.rs1)
    | Op.XORI -> Some (lift1 (fun x -> Int64.logxor x i.Insn.imm) i.Insn.rs1)
    | Op.ANDI -> Some (lift1 (fun x -> Int64.logand x i.Insn.imm) i.Insn.rs1)
    | _ -> None
  in
  match result with
  | Some v -> set i.Insn.rd v
  | None ->
      (* any other definition makes its targets unknown *)
      List.iter
        (fun r -> if Reg.is_int r then set r Top)
        (Insn.defs i)

(* calls clobber the caller-saved registers *)
let clobber_caller_saved (env : env) =
  List.iter (fun r -> env.(r) <- Top) Reg.caller_saved_int

type t = { entry_envs : (int64, env) Hashtbl.t; cfg : Cfg.t }

let block_out (b : block) (env_in : env) : env =
  let env = copy env_in in
  List.iter (fun ins -> transfer env ins) b.b_insns;
  if
    List.exists
      (fun e -> e.ek = E_call || e.ek = E_call_ft)
      b.b_out
  then clobber_caller_saved env;
  env

let analyze (cfg : Cfg.t) (func : func) : t =
  let entry_envs = Hashtbl.create 16 in
  Hashtbl.replace entry_envs func.f_entry (fresh_entry_env ());
  let blocks = Cfg.blocks_of cfg func in
  let changed = ref true in
  let rounds = ref 0 in
  while !changed && !rounds < 100 do
    incr rounds;
    changed := false;
    List.iter
      (fun (b : block) ->
        match Hashtbl.find_opt entry_envs b.b_start with
        | None -> ()
        | Some env_in ->
            let out = block_out b env_in in
            List.iter
              (fun succ ->
                let next =
                  match Hashtbl.find_opt entry_envs succ with
                  | None -> Some out
                  | Some cur ->
                      let m = env_join cur out in
                      if env_equal m cur then None else Some m
                in
                match next with
                | Some e ->
                    Hashtbl.replace entry_envs succ e;
                    changed := true
                | None -> ())
              (Cfg.intra_succs b))
      blocks
  done;
  { entry_envs; cfg }

(* Value of [reg] just before the instruction at [addr] inside [b]. *)
let value_before (t : t) (b : block) (addr : int64) (reg : int) : v =
  if reg = 0 then C 0L
  else
    match Hashtbl.find_opt t.entry_envs b.b_start with
    | None -> Top
    | Some env_in ->
        let env = copy env_in in
        let rec walk = function
          | [] -> ()
          | (ins : Instruction.t) :: rest ->
              if Int64.compare ins.Instruction.addr addr >= 0 then ()
              else begin
                transfer env ins;
                walk rest
              end
        in
        walk b.b_insns;
        env.(reg)
