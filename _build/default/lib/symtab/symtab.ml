(* SymtabAPI: an abstract view of how the binary is structured and stored
   (paper §2.1, §3.2.1).

   Beyond generic symbol/section access, the RISC-V specific duty is
   extension discovery: parse .riscv.attributes for the target arch
   string; if the section is missing (it is optional), fall back to
   e_flags, which every ELF carries (paper §3.2.1). *)

open Elfkit

type region = {
  rg_name : string;
  rg_addr : int64;
  rg_size : int;
  rg_data : Bytes.t;
  rg_exec : bool;
  rg_write : bool;
}

type t = {
  image : Types.image;
  regions : region list;
  profile : Riscv.Ext.profile;
  profile_source : [ `Attributes | `Eflags ];
  attributes : Attributes.t option;
  by_name : (string, Types.symbol) Hashtbl.t;
  funcs_sorted : Types.symbol array; (* function symbols sorted by address *)
}

exception Symtab_error of string

(* Extension discovery per the paper: prefer .riscv.attributes, fall back
   to e_flags.  The e_flags fallback can only see C and the float ABI, so
   the base is the conventional rv64ima_zicsr_zifencei minimum. *)
let profile_of_image (img : Types.image) =
  match Attributes.of_image img with
  | Some ({ Attributes.arch = Some arch_string; _ } as attrs) -> (
      match Riscv.Ext.parse_arch_string arch_string with
      | Ok p -> (p, `Attributes, Some attrs)
      | Error e -> raise (Symtab_error ("bad .riscv.attributes arch: " ^ e)))
  | other ->
      let open Riscv.Ext in
      let base =
        Set.of_list [ I; M; A; Zicsr; Zifencei ]
      in
      let f = img.Types.e_flags in
      let abi = f land Types.ef_riscv_float_abi_mask in
      let base = if abi >= Types.ef_riscv_float_abi_single then Set.add F base else base in
      let base = if abi >= Types.ef_riscv_float_abi_double then Set.add D base else base in
      let base = if f land Types.ef_riscv_rvc <> 0 then Set.add C base else base in
      ({ xlen = 64; exts = base }, `Eflags, other)

let of_image (img : Types.image) : t =
  let regions =
    List.filter_map
      (fun (s : Types.section) ->
        if s.Types.s_flags land Types.shf_alloc <> 0 then
          Some
            {
              rg_name = s.Types.s_name;
              rg_addr = s.Types.s_addr;
              rg_size = s.Types.s_size;
              rg_data = s.Types.s_data;
              rg_exec = s.Types.s_flags land Types.shf_execinstr <> 0;
              rg_write = s.Types.s_flags land Types.shf_write <> 0;
            }
        else None)
      img.Types.sections
  in
  let profile, profile_source, attributes = profile_of_image img in
  let by_name = Hashtbl.create 64 in
  List.iter (fun s -> Hashtbl.replace by_name s.Types.sym_name s) img.Types.symbols;
  let funcs =
    List.filter (fun s -> s.Types.sym_type = Types.stt_func) img.Types.symbols
    |> List.sort (fun a b -> Int64.compare a.Types.sym_value b.Types.sym_value)
    |> Array.of_list
  in
  { image = img; regions; profile; profile_source; attributes; by_name;
    funcs_sorted = funcs }

let of_bytes b = of_image (Read.read b)
let of_file path = of_image (Read.of_file path)

let entry t = t.image.Types.entry
let machine t = t.image.Types.machine
let symbols t = t.image.Types.symbols
let profile t = t.profile
let profile_source t = t.profile_source
let supports t e = Riscv.Ext.supports t.profile e
let regions t = t.regions
let code_regions t = List.filter (fun r -> r.rg_exec) t.regions

let find_symbol t name = Hashtbl.find_opt t.by_name name

let functions t = Array.to_list t.funcs_sorted

(* innermost function symbol containing [addr] *)
let function_at t addr =
  let n = Array.length t.funcs_sorted in
  let rec bsearch lo hi best =
    if lo >= hi then best
    else
      let mid = (lo + hi) / 2 in
      let s = t.funcs_sorted.(mid) in
      if Int64.compare s.Types.sym_value addr <= 0 then bsearch (mid + 1) hi (Some s)
      else bsearch lo mid best
  in
  match bsearch 0 n None with
  | Some s
    when s.Types.sym_size = 0L
         || Int64.compare addr (Int64.add s.Types.sym_value s.Types.sym_size) < 0 ->
      Some s
  | _ -> None

let region_at t addr =
  List.find_opt
    (fun r ->
      Int64.compare r.rg_addr addr <= 0
      && Int64.compare addr (Int64.add r.rg_addr (Int64.of_int r.rg_size)) < 0)
    t.regions

(* Read [len] bytes of initialized data at virtual address [addr], e.g.
   for jump-table analysis. *)
let read_data t addr len =
  match region_at t addr with
  | Some r ->
      let off = Int64.to_int (Int64.sub addr r.rg_addr) in
      if off + len <= Bytes.length r.rg_data then
        Some (Bytes.sub r.rg_data off len)
      else None
  | None -> None

let read_u64 t addr =
  match read_data t addr 8 with
  | Some b -> Some (Bytes.get_int64_le b 0)
  | None -> None

let read_u32 t addr =
  match read_data t addr 4 with
  | Some b ->
      Some (Int64.logand (Int64.of_int32 (Bytes.get_int32_le b 0)) 0xFFFF_FFFFL)
  | None -> None

let is_code_addr t addr =
  match region_at t addr with Some r -> r.rg_exec | None -> false
