(** SymtabAPI (paper §2.1, §3.2.1): an abstract view of how a binary is
    structured and stored — symbols, code/data regions, and the RISC-V
    specific duty of extension discovery.

    Per the paper, the extension set ("profile") comes from the
    [.riscv.attributes] section's arch string when present, and falls
    back to [e_flags] (which every ELF carries) otherwise; [e_flags] can
    only reveal C and the float ABI, so the fallback assumes the
    conventional rv64ima_zicsr_zifencei base. *)

type region = {
  rg_name : string;
  rg_addr : int64;
  rg_size : int;
  rg_data : Bytes.t;
  rg_exec : bool;
  rg_write : bool;
}

type t = {
  image : Elfkit.Types.image;
  regions : region list;
  profile : Riscv.Ext.profile;
  profile_source : [ `Attributes | `Eflags ];
  attributes : Elfkit.Attributes.t option;
  by_name : (string, Elfkit.Types.symbol) Hashtbl.t;
  funcs_sorted : Elfkit.Types.symbol array;
}

exception Symtab_error of string

val of_image : Elfkit.Types.image -> t
val of_bytes : Bytes.t -> t
val of_file : string -> t

val entry : t -> int64
val machine : t -> int
val symbols : t -> Elfkit.Types.symbol list

(** The mutatee's extension profile (what CodeGenAPI may emit). *)
val profile : t -> Riscv.Ext.profile

(** Where the profile came from: the attributes section or the e_flags
    fallback. *)
val profile_source : t -> [ `Attributes | `Eflags ]

val supports : t -> Riscv.Ext.t -> bool
val regions : t -> region list
val code_regions : t -> region list
val find_symbol : t -> string -> Elfkit.Types.symbol option

(** Function symbols, sorted by address. *)
val functions : t -> Elfkit.Types.symbol list

(** Innermost function symbol containing the address, honouring symbol
    sizes when present. *)
val function_at : t -> int64 -> Elfkit.Types.symbol option

val region_at : t -> int64 -> region option

(** Read initialized data at a virtual address (jump-table analysis uses
    this to fetch table entries). *)
val read_data : t -> int64 -> int -> Bytes.t option

val read_u64 : t -> int64 -> int64 option
val read_u32 : t -> int64 -> int64 option
val is_code_addr : t -> int64 -> bool

(**/**)

val profile_of_image :
  Elfkit.Types.image ->
  Riscv.Ext.profile * [ `Attributes | `Eflags ] * Elfkit.Attributes.t option
