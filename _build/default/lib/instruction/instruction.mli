(** InstructionAPI (paper §2.1, §3.2.2): ISA-independent instruction
    objects — the role Capstone v6 plays in the C++ port.

    Exposes, per instruction: an abstract category, the operand list with
    read/write/implicit flags, memory access sizes, direct control-flow
    targets, link registers, and the SAIL-derived semantic tree.

    The category is deliberately {e syntactic}: a [jalr] is an
    [Indirect_jump] here — whether it is a call, return, tail call or
    jump-table dispatch is decided contextually by ParseAPI (paper
    §3.1.3). *)

type category =
  | Cond_branch
  | Direct_jump  (** jal — role disambiguated by ParseAPI *)
  | Indirect_jump  (** jalr *)
  | Load
  | Store
  | Atomic
  | Arith
  | Float_op
  | Csr_op
  | Fence
  | Syscall
  | Breakpoint

type access = Read | Write | Read_write

type operand =
  | Reg of { reg : Riscv.Reg.t; access : access; implicit : bool }
  | Imm of int64
  | Mem of { base : Riscv.Reg.t; disp : int64; size : int; access : access }

type t = {
  insn : Riscv.Insn.t;  (** the decoded machine instruction *)
  addr : int64;
  category : category;
  operands : operand list;
}

(** Wrap an already-decoded instruction. *)
val of_insn : addr:int64 -> Riscv.Insn.t -> t

(** Decode one instruction at byte offset [pos] of [code] loaded at
    [base]; [None] on undecodable bytes. *)
val decode : base:int64 -> Bytes.t -> pos:int -> t option

val length : t -> int
val next_addr : t -> int64
val op : t -> Riscv.Op.t

(** Registers read / written, as flat {!Riscv.Reg.t} ids (x0 filtered). *)
val regs_read : t -> Riscv.Reg.t list

val regs_written : t -> Riscv.Reg.t list

(** Memory access size in bytes; 0 for non-memory instructions. *)
val memory_size : t -> int

val reads_memory : t -> bool
val writes_memory : t -> bool

(** Direct control-flow target, when statically encoded (jal, branches). *)
val target : t -> int64 option

(** For jal/jalr: the link register ([x0] when no return address is kept —
    the multi-use distinction at the heart of paper §3.1.3). *)
val link_reg : t -> Riscv.Reg.t option

(** The SAIL-pipeline semantic tree for this opcode (paper §3.2.4). *)
val semantics : t -> Sailsem.Ir.sem option

val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** Disassemble an entire region; undecodable halfwords yield [None]
    entries and decoding resynchronizes at the next halfword. *)
val disassemble_all : base:int64 -> Bytes.t -> (int64 * t option) list

(**/**)

val categorize : Riscv.Insn.t -> category
val operands_of : Riscv.Insn.t -> operand list
