(* InstructionAPI: ISA-independent instruction objects (paper §2.1,
   §3.2.2).

   This is the role Capstone v6 plays for the real port: it exposes, per
   instruction, the operand list with read/write/implicit flags, memory
   access size, and an abstract category.  Note the category is
   *syntactic*: a jalr is an indirect jump here; deciding whether it is a
   call, return, tail call or jump table is ParseAPI's job (paper
   §3.1.3). *)

open Riscv

type category =
  | Cond_branch
  | Direct_jump (* jal: call/jump/tail-call disambiguated by ParseAPI *)
  | Indirect_jump (* jalr *)
  | Load
  | Store
  | Atomic
  | Arith
  | Float_op
  | Csr_op
  | Fence
  | Syscall
  | Breakpoint

type access = Read | Write | Read_write

type operand =
  | Reg of { reg : Reg.t; access : access; implicit : bool }
  | Imm of int64
  | Mem of { base : Reg.t; disp : int64; size : int; access : access }

type t = {
  insn : Insn.t;
  addr : int64;
  category : category;
  operands : operand list;
}

let categorize (i : Insn.t) : category =
  match i.Insn.op with
  | Op.JAL -> Direct_jump
  | Op.JALR -> Indirect_jump
  | op when Op.is_cond_branch op -> Cond_branch
  | Op.ECALL -> Syscall
  | Op.EBREAK -> Breakpoint
  | Op.FENCE | Op.FENCE_I -> Fence
  | Op.CSRRW | Op.CSRRS | Op.CSRRC | Op.CSRRWI | Op.CSRRSI | Op.CSRRCI ->
      Csr_op
  | op when Op.is_amo op -> Atomic
  | op when Op.is_load op -> Load
  | op when Op.is_store op -> Store
  | op when Op.rd_is_fp op || Op.rs1_is_fp op -> Float_op
  | _ -> Arith

let operands_of (i : Insn.t) : operand list =
  let open Op in
  let xr n = if rd_is_fp i.op then Riscv.Reg.f n else Riscv.Reg.x n in
  let x1 n = if rs1_is_fp i.op then Riscv.Reg.f n else Riscv.Reg.x n in
  let x2 n = if rs2_is_fp i.op then Riscv.Reg.f n else Riscv.Reg.x n in
  let dst = Reg { reg = xr i.rd; access = Write; implicit = false } in
  let src1 = Reg { reg = x1 i.rs1; access = Read; implicit = false } in
  let src2 = Reg { reg = x2 i.rs2; access = Read; implicit = false } in
  let src3 = Reg { reg = Riscv.Reg.f i.rs3; access = Read; implicit = false } in
  let size = access_size i.op in
  match encoding i.op with
  | R _ | R_rm _ -> [ dst; src1; src2 ]
  | R_rs2 _ | R_rm_rs2 _ -> [ dst; src1 ]
  | R4 _ -> [ dst; src1; src2; src3 ]
  | A _ ->
      let mem_access =
        if is_load i.op then Read
        else if i.op = SC_W || i.op = SC_D then Write
        else Read_write
      in
      let mem = Mem { base = Riscv.Reg.x i.rs1; disp = 0L; size; access = mem_access } in
      if i.op = LR_W || i.op = LR_D then [ dst; mem ] else [ dst; src2; mem ]
  | I _ when is_load i.op ->
      [ dst; Mem { base = Riscv.Reg.x i.rs1; disp = i.imm; size; access = Read } ]
  | I _ -> [ dst; src1; Imm i.imm ]
  | Sh _ | Sh5 _ -> [ dst; src1; Imm i.imm ]
  | S _ ->
      [ src2; Mem { base = Riscv.Reg.x i.rs1; disp = i.imm; size; access = Write } ]
  | B _ -> [ src1; src2; Imm i.imm ]
  | U _ -> [ dst; Imm i.imm ]
  | J _ -> [ dst; Imm i.imm ]
  | Fence | Fixed _ -> []
  | Csr _ ->
      (* fcsr-like CSR state is an implicit operand *)
      [ dst; src1; Imm (Int64.of_int i.csr);
        Reg { reg = Riscv.Reg.fcsr; access = Read_write; implicit = true } ]
  | Csri _ ->
      [ dst; Imm (Int64.of_int i.rs1); Imm (Int64.of_int i.csr);
        Reg { reg = Riscv.Reg.fcsr; access = Read_write; implicit = true } ]

let of_insn ~addr (insn : Insn.t) : t =
  { insn; addr; category = categorize insn; operands = operands_of insn }

(* Decode one instruction at [pos] within [code] loaded at [base]. *)
let decode ~(base : int64) (code : Bytes.t) ~(pos : int) : t option =
  match Decode.decode ~pos code with
  | Some insn -> Some (of_insn ~addr:(Int64.add base (Int64.of_int pos)) insn)
  | None -> None

let length t = t.insn.Insn.len
let next_addr t = Int64.add t.addr (Int64.of_int t.insn.Insn.len)
let op t = t.insn.Insn.op

(* Registers read / written, as flat Reg ids (x0 filtered). *)
let regs_read t = Insn.uses t.insn
let regs_written t = Insn.defs t.insn

(* Memory access size in bytes, 0 if not a memory instruction. *)
let memory_size t = Op.access_size t.insn.Insn.op

let reads_memory t = Op.is_load (op t) || Op.is_amo (op t)
let writes_memory t = Op.is_store (op t) || Op.is_amo (op t)

(* Direct control-flow target, if statically known from the encoding. *)
let target t = Insn.target ~addr:t.addr t.insn

(* Is this an x0-linked jal/jalr (no return address saved)? *)
let link_reg t =
  match op t with
  | Op.JAL | Op.JALR -> Some (Riscv.Reg.x t.insn.Insn.rd)
  | _ -> None

(* The AST-like semantic tree for this instruction, from the SAIL
   pipeline; what DataflowAPI's slicing consumes. *)
let semantics t = Sailsem.Sail.sem_of_op (op t)

let pp fmt t = Format.fprintf fmt "%Lx: %a" t.addr Insn.pp t.insn
let to_string t = Format.asprintf "%a" pp t

(* Disassemble every instruction in [code]; undecodable bytes produce
   [None] entries and decoding resumes at the next halfword, which is how
   the parser skips data islands. *)
let disassemble_all ~base (code : Bytes.t) : (int64 * t option) list =
  let rec go pos acc =
    if pos + 2 > Bytes.length code then List.rev acc
    else
      let addr = Int64.add base (Int64.of_int pos) in
      match decode ~base code ~pos with
      | Some t -> go (pos + length t) ((addr, Some t) :: acc)
      | None -> go (pos + 2) ((addr, None) :: acc)
  in
  go 0 []
