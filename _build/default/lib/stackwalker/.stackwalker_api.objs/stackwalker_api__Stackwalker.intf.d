lib/stackwalker/stackwalker.mli: Dataflow_api Format Hashtbl Parse_api Riscv Rvsim Symtab
