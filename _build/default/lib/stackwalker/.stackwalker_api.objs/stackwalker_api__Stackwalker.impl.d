lib/stackwalker/stackwalker.ml: Cfg Dataflow_api Format Hashtbl Insn Instruction Int64 List Op Option Parse_api Reg Riscv Rvsim Symtab
