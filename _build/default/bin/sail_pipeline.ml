(* sail_pipeline: run the SAIL semantics pipeline (paper §3.2.4) and dump
   its intermediate JSON representation — the artifact the paper's
   stage-2 code generator consumes.

     dune exec bin/sail_pipeline.exe            # stats
     dune exec bin/sail_pipeline.exe -- --json  # full JSON IR            *)

let () =
  let dump_json = Array.exists (( = ) "--json") Sys.argv in
  let t = Sailsem.Sail.pipeline_of_text Sailsem.Spec.text in
  if dump_json then print_endline (Sailsem.Json.to_string (Sailsem.Sail.json_ir ()))
  else begin
    Printf.printf "clauses compiled:           %d\n" (Hashtbl.length t.Sailsem.Sail.sems);
    Printf.printf "error-handling stripped:    %d statements\n"
      t.Sailsem.Sail.removed_error_handling;
    Printf.printf "JSON IR size:               %d bytes\n"
      (String.length (Sailsem.Json.to_string t.Sailsem.Sail.json));
    (* coverage against the decoder's opcode table *)
    let missing =
      List.filter
        (fun (op, _, _, _) -> Sailsem.Sail.sem_of_op op = None)
        Riscv.Op.table
    in
    Printf.printf "opcode coverage:            %d/%d (%d missing)\n"
      (List.length Riscv.Op.table - List.length missing)
      (List.length Riscv.Op.table) (List.length missing)
  end
