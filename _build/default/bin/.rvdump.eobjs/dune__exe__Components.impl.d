bin/components.ml: Core List Printf String
