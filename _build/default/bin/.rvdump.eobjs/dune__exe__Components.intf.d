bin/components.mli:
