bin/sail_pipeline.ml: Array Hashtbl List Printf Riscv Sailsem String Sys
