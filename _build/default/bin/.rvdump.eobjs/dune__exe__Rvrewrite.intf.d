bin/rvrewrite.mli:
