bin/rvdump.mli:
