bin/rvrewrite.ml: Arg Cmd Cmdliner Codegen_api Core List Patch_api Printf Term
