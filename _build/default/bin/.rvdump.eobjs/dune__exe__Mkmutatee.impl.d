bin/mkmutatee.ml: Arg Cmd Cmdliner Elfkit Format Fun List Minicc Printf Rvsim Term
