bin/sail_pipeline.mli:
