bin/mkmutatee.mli:
