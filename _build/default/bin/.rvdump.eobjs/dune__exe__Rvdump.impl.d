bin/rvdump.ml: Arg Cmd Cmdliner Format Instruction Int64 List Parse_api Printf Riscv Symtab Term
