(* components: print the toolkit dependency map (paper Figure 2). *)

let () =
  print_endline "Dyninst-RISC-V component map (paper Figure 2):";
  List.iter
    (fun (c, deps) ->
      Printf.printf "  %-16s <- %s\n" c
        (if deps = [] then "(leaf)" else String.concat ", " deps))
    Core.components
