(* mkmutatee: compile a mini-C source file to a RV64GC ELF executable
   that the other tools (rvdump, rvrewrite) and the simulator can use.

     dune exec bin/mkmutatee.exe -- prog.c -o prog.elf [--run]
     dune exec bin/mkmutatee.exe -- --builtin matmul -o out.elf          *)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let build source_arg output builtin run =
  let source =
    match builtin with
    | Some "matmul" -> Minicc.Programs.matmul ~n:16 ~reps:2
    | Some "switch" -> Minicc.Programs.switch_demo
    | Some "fib" -> Minicc.Programs.fib
    | Some "mixed" -> Minicc.Programs.mixed
    | Some "calls" -> Minicc.Programs.calls
    | Some other -> failwith ("unknown builtin " ^ other)
    | None -> (
        match source_arg with
        | Some p -> read_file p
        | None -> failwith "need a source file or --builtin")
  in
  let c = Minicc.Driver.compile source in
  Elfkit.Write.to_file output c.Minicc.Driver.image;
  Printf.printf "wrote %s (%d functions)\n" output
    (List.length c.Minicc.Driver.fn_addrs);
  if run then begin
    let p = Rvsim.Loader.load_file output in
    let stop, out = Rvsim.Loader.run p in
    print_string out;
    Format.printf "-> %a\n" Rvsim.Machine.pp_stop stop
  end

let source_arg =
  Arg.(value & pos 0 (some file) None & info [] ~docv:"SRC" ~doc:"mini-C source")

let output_arg =
  Arg.(required & opt (some string) None & info [ "o"; "output" ] ~docv:"OUT"
       ~doc:"output ELF")

let builtin_arg =
  Arg.(value & opt (some string) None
       & info [ "builtin" ] ~doc:"use a built-in program (matmul|switch|fib|mixed|calls)")

let run_flag = Arg.(value & flag & info [ "run" ] ~doc:"run the result in the simulator")

let cmd =
  Cmd.v
    (Cmd.info "mkmutatee" ~doc:"compile mini-C to a RISC-V ELF")
    Term.(const build $ source_arg $ output_arg $ builtin_arg $ run_flag)

let () = exit (Cmd.eval cmd)
